"""The worker daemon: ``python -m repro worker serve``.

One daemon per machine turns that machine into scheduler capacity: it
listens on a TCP port, authenticates each connecting coordinator with
the mutual HMAC handshake of :mod:`repro.eval.sched.wire`
(``REPRO_SCHED_TOKEN``), and runs the leaves it receives on a local
work-stealing pool (:class:`~repro.eval.sched.stealing.WorkersBackend`
— the same pool ``--backend workers`` uses in-process), streaming each
result frame back the moment the leaf finishes.

Per-session threading
    Each authenticated coordinator gets its own session with its own
    pool: a **reader** thread owns the socket's receive side (jobs,
    cache traffic, heartbeats) and a **pump** thread owns the pool
    exclusively (submit + poll), so the non-thread-safe
    ``WorkersBackend`` is never shared.  ``FrameStream.send`` is locked
    internally, which is what lets both threads answer on one socket.

Cache side
    The daemon keeps its own content-addressed
    :class:`~repro.eval.cache.ResultCache`: every executed leaf is
    stored under its digest, ``cache_offer`` frames are answered from
    ``has_object``, ``cache_pull`` serves the pickled object (or a
    ``cache_miss``), and ``cache_push`` seeds the store — the daemon
    half of the coordinator's digest-based cache sync.

Health
    ``--telemetry-port`` starts the stack's standard
    :class:`~repro.obs.http.TelemetryServer` with two checks on
    ``/healthz``: ``daemon.coordinator`` (informational: connected
    coordinator count) and ``daemon.pool`` — **not ok while the pool
    has queued backlog**, so a load balancer probing workers steers new
    coordinators away from saturated machines.

Stats live in a plain dict (not the metrics registry, which a
coordinator-side ``generate_report`` in the same process would reset)
and ride back to coordinators in every ``pong``.
"""

import argparse
import os
import pickle
import queue
import signal
import socket
import sys
import threading

from repro.eval.sched import wire
from repro.eval.sched.stealing import WorkersBackend

#: Seconds a new connection gets to complete the handshake.
HANDSHAKE_TIMEOUT = 10.0

#: Pump-thread poll granularity (pool results / incoming jobs).
_POLL_S = 0.05


class _Session:
    """One authenticated coordinator connection."""

    def __init__(self, daemon, sock, peer):
        self.daemon = daemon
        self.sock = sock
        self.peer = peer
        self.stream = None
        self.pool = None
        self._jobs = queue.Queue()
        self._digests = {}           # task name -> fingerprint
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-daemon-{peer[0]}:{peer[1]}",
            daemon=True)

    def start(self):
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        if self.stream is not None:
            self.stream.close()

    # ------------------------------------------------------------------

    def _run(self):
        self.stream = wire.FrameStream(self.sock)
        try:
            self.sock.settimeout(HANDSHAKE_TIMEOUT)
            wire.server_handshake(
                self.stream, self.daemon.token,
                info={"workers": self.daemon.workers,
                      "host": self.daemon.label})
            self.sock.settimeout(None)
        except (wire.WireError, EOFError, OSError):
            self.daemon.bump("rejected")
            self.stream.close()
            self.daemon.forget(self)
            return
        self.daemon.bump("sessions")
        self.daemon.bump("connected")
        self.pool = WorkersBackend(self.daemon.workers)
        pump = threading.Thread(target=self._pump,
                                name=self._thread.name + "-pump",
                                daemon=True)
        pump.start()
        try:
            self._reader()
        finally:
            self._stop.set()
            pump.join(timeout=10.0)
            self.pool.close()
            self.stream.close()
            self.daemon.bump("connected", -1)
            self.daemon.forget(self)

    # ------------------------------------------------------------------
    # reader thread: everything arriving on the socket
    # ------------------------------------------------------------------

    def _reader(self):
        while not self._stop.is_set():
            try:
                env = self.stream.recv()
            except (EOFError, OSError):
                return
            except wire.WireError as exc:
                if exc.fatal:
                    return
                self.daemon.bump("wire_errors")
                self._send(wire.error_envelope(
                    "?", f"malformed frame: {exc}"))
                continue
            kind = env.get("kind")
            if kind == "job":
                self._on_job(env)
            elif kind == "cache_offer":
                self._on_cache_offer(env)
            elif kind == "cache_pull":
                self._on_cache_pull(env)
            elif kind == "cache_push":
                self._on_cache_push(env)
            elif kind == "ping":
                self._send(wire.pong_envelope(env.get("seq", 0),
                                              self.daemon.stats()))
            elif kind == "shutdown":
                return
            else:
                self._send(wire.error_envelope(
                    "?", f"unexpected frame kind {kind!r}"))

    def _send(self, envelope):
        try:
            self.stream.send(envelope)
            return True
        except (OSError, wire.WireError):
            self._stop.set()
            return False

    def _on_job(self, env):
        try:
            task = wire.task_from_envelope(env)
        except Exception as exc:
            self.daemon.bump("wire_errors")
            self._send(wire.error_envelope(
                env.get("name", "?"), f"undecodable job frame: {exc!r}"))
            return
        self.daemon.bump("jobs")
        if task.fingerprint:
            self._digests[task.name] = task.fingerprint
        self._jobs.put(task)

    def _on_cache_offer(self, env):
        cache = self.daemon.cache
        digests = env.get("digests") or []
        hits = [d for d in digests
                if cache is not None and cache.has_object(d)]
        self.daemon.bump("cache_offers")
        self._send(wire.cache_hits_envelope(env.get("offer"), hits))

    def _on_cache_pull(self, env):
        digest = env.get("digest")
        cache = self.daemon.cache
        hit, value = (cache.load_object(digest) if cache is not None
                      else (False, None))
        if hit:
            self.daemon.bump("cache_pulls")
            self._send(wire.cache_object_envelope(digest, value))
        else:
            self._send(wire.cache_miss_envelope(digest))

    def _on_cache_push(self, env):
        cache = self.daemon.cache
        if cache is None:
            return
        try:
            value = pickle.loads(env["payload"])
        except Exception:
            self.daemon.bump("wire_errors")
            return
        self.daemon.bump("cache_pushes")
        cache.store_object(env.get("digest", ""), value)

    # ------------------------------------------------------------------
    # pump thread: exclusive owner of the local stealing pool
    # ------------------------------------------------------------------

    def _pump(self):
        while not self._stop.is_set():
            moved = False
            try:
                while True:
                    self.pool.submit(self._jobs.get_nowait())
                    moved = True
            except queue.Empty:
                pass
            self.daemon.note_load(self.pool.outstanding,
                                  self._jobs.qsize())
            if self.pool.outstanding:
                result = self.pool.next_result(timeout=_POLL_S)
                if result is None:
                    continue
                digest = self._digests.pop(result.name, None)
                if result.ok and digest is not None \
                        and self.daemon.cache is not None:
                    self.daemon.cache.store_object(digest, result.value,
                                                   name=result.name)
                self.daemon.bump("errors" if not result.ok else "results")
                if not self._send(wire.result_envelope(result,
                                                       result.worker)):
                    return
            elif not moved:
                # Idle: wait for work without spinning.
                try:
                    self.pool.submit(self._jobs.get(timeout=_POLL_S * 4))
                except queue.Empty:
                    pass
        self.daemon.note_load(0, 0)


class WorkerDaemon:
    """Accept coordinator sessions and serve leaves from this machine."""

    def __init__(self, bind=("127.0.0.1", 0), workers=None, cache=None,
                 token=None, label=None):
        self.workers = max(1, int(workers or os.cpu_count() or 1))
        self.token = wire.default_token() if token is None else token
        self.label = label or socket.gethostname()
        self.cache = cache
        self.host, self.port = bind
        self._listener = None
        self._accept_thread = None
        self._sessions = set()
        self._lock = threading.Lock()
        self._stats = {"sessions": 0, "connected": 0, "rejected": 0,
                       "jobs": 0, "results": 0, "errors": 0,
                       "cache_offers": 0, "cache_pulls": 0,
                       "cache_pushes": 0, "wire_errors": 0,
                       "inflight": 0, "backlog": 0}
        self._telemetry = None

    # -- stats shared across session threads ---------------------------

    def bump(self, key, delta=1):
        with self._lock:
            self._stats[key] = self._stats.get(key, 0) + delta

    def note_load(self, inflight, backlog):
        with self._lock:
            self._stats["inflight"] = inflight
            self._stats["backlog"] = backlog

    def stats(self):
        with self._lock:
            return dict(self._stats, workers=self.workers,
                        label=self.label)

    def forget(self, session):
        with self._lock:
            self._sessions.discard(session)

    # -- lifecycle ------------------------------------------------------

    def start(self):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, self.port))
        self._listener.listen(16)
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-daemon-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    def _accept_loop(self):
        while True:
            try:
                sock, peer = self._listener.accept()
            except OSError:              # listener closed: shutting down
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            session = _Session(self, sock, peer)
            with self._lock:
                self._sessions.add(session)
            session.start()

    def stop(self):
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:              # pragma: no cover
                pass
        with self._lock:
            sessions = list(self._sessions)
        for session in sessions:
            session.stop()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if self._telemetry is not None:
            self._telemetry.stop()
            self._telemetry = None

    # -- telemetry ------------------------------------------------------

    def start_telemetry(self, port):
        """Standard telemetry endpoint + the daemon's health checks."""
        from repro.obs.http import TelemetryServer

        server = TelemetryServer(port=port)
        server.add_health_check(
            "daemon.coordinator",
            lambda: {"ok": True,
                     "connected": self.stats()["connected"]})

        def pool_check():
            stats = self.stats()
            return {"ok": stats["backlog"] == 0,
                    "inflight": stats["inflight"],
                    "backlog": stats["backlog"],
                    "workers": self.workers}

        server.add_health_check("daemon.pool", pool_check)
        self._telemetry = server.start()
        return server


# ----------------------------------------------------------------------
# CLI — ``python -m repro worker serve``
# ----------------------------------------------------------------------

def _parse_bind(spec):
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"bad --bind {spec!r}: expected HOST:PORT (PORT 0 = ephemeral)")
    return host or "127.0.0.1", int(port)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description="Serve this machine's cores to remote-backend "
                    "coordinators over the repro.sched/1 protocol.")
    sub = parser.add_subparsers(dest="command", required=True)
    serve = sub.add_parser("serve", help="run the worker daemon")
    serve.add_argument("--bind", type=_parse_bind,
                       default=("127.0.0.1", 0), metavar="HOST:PORT",
                       help="listen address (port 0 = ephemeral, "
                            "default 127.0.0.1:0)")
    serve.add_argument("--workers", type=int, default=0,
                       help="local pool size (default: cpu count)")
    serve.add_argument("--cache-root", default=None,
                       help="content-addressed result store for cache "
                            "sync (default: the stack's standard root; "
                            "honours REPRO_RESULT_CACHE)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the daemon-side result store")
    serve.add_argument("--label", default=None,
                       help="host label in coordinator telemetry "
                            "(default: hostname)")
    serve.add_argument("--telemetry-port", type=int, default=None,
                       metavar="PORT",
                       help="serve /metrics and /healthz (connected "
                            "coordinators + pool saturation) on "
                            "127.0.0.1:PORT")
    serve.add_argument("--port-file", default=None, metavar="PATH",
                       help="write 'HOST PORT' here once bound (how "
                            "scripts discover an ephemeral port)")
    args = parser.parse_args(argv)

    cache = None
    if not args.no_cache:
        from repro.eval.cache import ResultCache, _default_cache_root

        root = args.cache_root or _default_cache_root()
        if root is not None:
            # Digest-addressed ops never consult the key fingerprint.
            cache = ResultCache(root=root, fingerprint="(daemon)")

    daemon = WorkerDaemon(bind=args.bind, workers=args.workers or None,
                          cache=cache, label=args.label)
    daemon.start()
    if args.telemetry_port is not None:
        server = daemon.start_telemetry(args.telemetry_port)
        print(f"telemetry: {server.url}", file=sys.stderr)
    if args.port_file:
        with open(args.port_file, "w") as fh:
            fh.write(f"{daemon.host} {daemon.port}\n")
    print(f"repro worker daemon listening on "
          f"{daemon.host}:{daemon.port} "
          f"(workers={daemon.workers}, label={daemon.label})",
          flush=True)

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, lambda *_: stop.set())
        except ValueError:               # pragma: no cover - non-main thread
            pass
    try:
        stop.wait()
    except KeyboardInterrupt:            # pragma: no cover
        pass
    daemon.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
