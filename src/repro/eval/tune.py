"""Per-design superword width auto-tuner (+ its CLI).

The bit-parallel simulator costs per *kernel pass*, not per pattern:
one compiled pass over a ``W``×64-pattern superword amortizes the
per-gate interpreter overhead over ``W`` more patterns, so ms/pattern
falls with ``W`` — until Python big-int arithmetic goes super-linear
and wide words start paying more per pattern than they save.  Where
that knee sits depends on the design (gate count vs net width), so it
is *measured*, not guessed:

    python -m repro tune width               # tune every serve design
    python -m repro tune width --design r16  # one design

For each candidate ``W`` in :data:`WIDTHS` the tuner packs a seeded
random stimulus into one ``W``×64-pattern superword, runs the compiled
levelized kernel (best of ``repeats``), and derives ms/pattern.  The
chosen width is the **smallest** ``W`` within :data:`KNEE_TOLERANCE`
of the fastest — preferring narrow words keeps serve batching latency
and memory bounded when the wider word buys nothing.

The choice is persisted in the content-addressed result store (see
:mod:`repro.eval.cache`), keyed by the source fingerprint like every
other cached result — editing the simulator re-tunes automatically.
:func:`tuned_word_patterns` is the cheap cache-only reader the serving
stack uses (``--word-patterns auto``); the live choice is exported via
the ``tune.word_patterns.<design>`` gauge.
"""

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro import obs

#: Candidate superword widths, in 64-pattern words: ``patterns = W*64``.
WIDTHS = (1, 2, 4, 8, 16, 64)

#: Prefer the *smallest* width within this fraction of the fastest.
KNEE_TOLERANCE = 0.10

#: Designs ``tune width`` profiles when none is named.
DEFAULT_DESIGNS = ("r16", "mf")


@dataclass(frozen=True)
class _TuneJob:
    """A result-cache key carrier (shaped like a scheduler job)."""

    name: str
    fn: str
    params: Dict[str, object] = field(default_factory=dict)


def _tune_job(design, widths=WIDTHS, seed=2017):
    return _TuneJob(name=f"tune/width/{design}",
                    fn="repro.eval.tune:tune_width",
                    params={"design": design, "widths": tuple(widths),
                            "seed": seed})


def _random_stimulus(module, n_patterns, seed):
    """Design-agnostic dense stimulus: every input bus fully random."""
    import random

    rng = random.Random(seed)
    return {name: [rng.getrandbits(len(nets)) for __ in range(n_patterns)]
            for name, nets in module.inputs.items()}


def profile_widths(design, widths=WIDTHS, seed=2017, repeats=3,
                   clock=None):
    """Measure ms/pattern at each candidate width for ``design``.

    Returns rows ``{"width", "patterns", "ms_per_pattern", "ms"}`` in
    ``widths`` order.  ``clock`` is injectable for deterministic tests
    (default :func:`time.perf_counter`).
    """
    from repro.eval.experiments import cached_module
    from repro.hdl.sim.levelized import LevelizedSimulator

    if clock is None:
        clock = time.perf_counter
    module = cached_module(design)
    sim = LevelizedSimulator(module)
    # One throwaway pass so kernel compilation is not billed to W=1.
    sim.run(_random_stimulus(module, 64, seed), 64)
    rows = []
    for width in widths:
        n = width * 64
        stim = _random_stimulus(module, n, seed)
        best = None
        for __ in range(max(1, repeats)):
            t0 = clock()
            sim.run(stim, n)
            dt = clock() - t0
            if best is None or dt < best:
                best = dt
        rows.append({"width": width, "patterns": n,
                     "ms": best * 1e3,
                     "ms_per_pattern": best * 1e3 / n})
    return rows


def pick_width(profile, tolerance=KNEE_TOLERANCE):
    """The knee: smallest width within ``tolerance`` of the fastest."""
    if not profile:
        raise ValueError("empty width profile")
    floor = min(row["ms_per_pattern"] for row in profile)
    for row in sorted(profile, key=lambda r: r["width"]):
        if row["ms_per_pattern"] <= floor * (1.0 + tolerance):
            return row["width"]
    return profile[-1]["width"]              # pragma: no cover


def tune_width(design, widths=WIDTHS, seed=2017, repeats=3, cache=True,
               profile=None, clock=None):
    """Profile ``design`` and persist the chosen superword width.

    Returns ``{"design", "width", "word_patterns", "profile",
    "tolerance"}``.  A precomputed ``profile`` skips measurement
    (deterministic tests); ``cache=False`` skips the result store, and
    a :class:`~repro.eval.cache.ResultCache` instance targets a
    specific store.
    """
    from repro.eval.cache import resolve_cache

    if profile is None:
        profile = profile_widths(design, widths=widths, seed=seed,
                                 repeats=repeats, clock=clock)
    width = pick_width(profile)
    result = {"design": design, "width": width,
              "word_patterns": width * 64, "profile": profile,
              "tolerance": KNEE_TOLERANCE}
    store = resolve_cache(cache)
    if store is not None:
        store.store(_tune_job(design, widths=widths, seed=seed), result)
    obs.registry().gauge(f"tune.word_patterns.{design}",
                         result["word_patterns"])
    return result


def tuned_word_patterns(design, default=64, widths=WIDTHS, seed=2017,
                        cache=True):
    """The cached tuned ``word_patterns`` for ``design``, else ``default``.

    Cache-only: never measures.  Serving uses this for
    ``--word-patterns auto`` so cold starts stay fast and deterministic.
    """
    from repro.eval.cache import resolve_cache

    store = resolve_cache(cache)
    if store is None:
        return default
    hit, value = store.load(_tune_job(design, widths=widths, seed=seed))
    if not hit or not isinstance(value, dict):
        return default
    patterns = value.get("word_patterns")
    if not isinstance(patterns, int) or patterns < 64:
        return default
    obs.registry().gauge(f"tune.word_patterns.{design}", patterns)
    return patterns


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro tune",
        description="Measure and persist per-design superword widths "
                    "for the bit-parallel simulator.")
    sub = parser.add_subparsers(dest="command", required=True)
    width_p = sub.add_parser(
        "width", help="profile ms/pattern at W in {%s} and cache the knee"
                      % ",".join(str(w) for w in WIDTHS))
    width_p.add_argument("--design", action="append", default=None,
                         help="design to tune (repeatable; default: "
                              + "/".join(DEFAULT_DESIGNS))
    width_p.add_argument("--seed", type=int, default=2017)
    width_p.add_argument("--repeats", type=int, default=3)
    width_p.add_argument("--no-cache", action="store_true",
                         help="measure and report only; do not persist")
    width_p.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    if args.command == "width":
        designs = args.design or list(DEFAULT_DESIGNS)
        results = []
        for design in designs:
            result = tune_width(design, seed=args.seed,
                                repeats=args.repeats,
                                cache=not args.no_cache)
            results.append(result)
            if not args.json:
                print(f"{design}: word_patterns={result['word_patterns']} "
                      f"(W={result['width']})")
                for row in result["profile"]:
                    print(f"  W={row['width']:>3} ({row['patterns']:>5} "
                          f"patterns): {row['ms_per_pattern'] * 1e3:8.2f} "
                          f"us/pattern  ({row['ms']:.2f} ms/run)")
        if args.json:
            print(json.dumps(results, indent=2, sort_keys=True))
        return 0
    return 2                                 # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
