"""repro — reproduction of Nannarelli's multi-format FP multiplier (SOCC 2017).

The package is layered bottom-up:

* :mod:`repro.bits`     — bit vectors and IEEE 754 codecs (Table IV);
* :mod:`repro.arith`    — reference arithmetic algorithms (recoding,
  partial products, compressor trees, adders, Fig. 3 rounding);
* :mod:`repro.hdl`      — the gate-level substrate (netlists, cell
  library, simulation, timing, area, power, pipelining);
* :mod:`repro.circuits` — structural circuit generators mirroring the
  reference algorithms;
* :mod:`repro.core`     — the multi-format multiplier (functional and
  structural) and the binary64 -> binary32 reducer;
* :mod:`repro.eval`     — workloads and the experiment harness that
  regenerates every table and figure of the paper.

Quickstart::

    from repro import MFMult
    mf = MFMult()
    print(mf.mul_fp64(1.5, 2.5))                 # 3.75 via the fp64 path
    print(mf.mul_fp32_pair((1.5, 3.0), (2.0, 7.0)))  # dual-lane binary32
"""

from repro.core import (
    Flag,
    MFFormat,
    MFMult,
    OperandBundle,
    ResultBundle,
    RoundingMode,
    VectorMultiplier,
    is_reducible,
    reduce_binary64,
)

__version__ = "1.0.0"

__all__ = [
    "Flag",
    "MFFormat",
    "MFMult",
    "OperandBundle",
    "ResultBundle",
    "RoundingMode",
    "VectorMultiplier",
    "is_reducible",
    "reduce_binary64",
    "__version__",
]
