"""Partial-product array construction with sign-extension reduction.

This module is the reference model of the paper's PP array (Sec. II and
Fig. 4).  Each partial product row for a recoded digit ``d`` and
multiplicand ``X`` contributes ``d * X * 2**offset`` to the product, but
is *encoded* so that the array contains only non-negative bit patterns:

*   the magnitude ``|d| * X`` is selected from the multiple set;
*   for negative digits the pattern is bitwise complemented (the XOR row
    of Fig. 1) and a single ``+1`` carry bit is injected at the row's
    LSB weight (two's complement);
*   the costly replication of the sign bit across the whole array
    ("sign extension") is avoided by the standard reduction-and-
    correction method [Ercegovac & Lang]: the encoded row keeps the
    *complement* of its sign bit at the top of its field and a single
    precomputed **correction constant** row repairs the sum.

Derivation (``w`` = field width = ``n + k``, ``s`` = sign of the row,
``plow`` = low ``w-1`` pattern bits):

    d*X  =  plow + carry + (1-s) * 2**(w-1)  -  2**(w-1)

so summing ``payload = plow | (1-s) << (w-1)`` plus the carry bit for
every row, plus the constant ``-sum(2**(offset_i + w - 1))``, yields the
exact product.  The constant is folded into one non-negative row modulo
the array window width.

**Dual-lane arrays (Fig. 4).**  For the two independent binary32
multiplications the array is split into two *windows*: bits ``[0, 64)``
hold ``X*Y`` and bits ``[64, 128)`` hold ``W*Z``.  Carries are killed at
the window boundary (the "correct carry-propagation" of Sec. III-B) and
each window has its own lane-local correction constant.
"""

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.arith.recoding import recode_minimally_redundant
from repro.bits.utils import mask
from repro.errors import BitWidthError


@dataclass(frozen=True)
class PPRow:
    """One encoded partial product row.

    The row contributes ``(payload + carry) * 2**offset`` to the array
    sum (the correction constant accounts for the sign-extension term).
    """

    payload: int        # non-negative encoded pattern, ``width`` bits
    offset: int         # weight: row value is payload * 2**offset
    carry: int          # 0/1 two's complement "+1" bit at 2**offset
    width: int          # field width in bits (n + k for signed rows)
    signed: bool        # True when the sign-extension encoding applies
    digit: int          # the recoded digit this row implements
    lane: str = "full"  # "full", "lo" or "hi" (dual binary32 lanes)

    def __post_init__(self):
        if self.payload < 0 or self.payload > mask(self.width):
            raise BitWidthError(
                f"payload {self.payload:#x} does not fit in {self.width} bits"
            )
        if self.carry not in (0, 1):
            raise BitWidthError(f"carry must be 0 or 1, got {self.carry}")

    @property
    def msb_position(self):
        """Absolute bit position of the row's top field bit."""
        return self.offset + self.width - 1


@dataclass(frozen=True)
class PPArray:
    """A complete encoded partial product array.

    ``windows`` lists the carry-isolation regions as ``(lo, hi)`` bit
    ranges; in single-format mode there is one window covering the whole
    product, in dual binary32 mode there are two (Fig. 4).
    ``corrections`` holds one non-negative constant per window, already
    reduced modulo the window width and positioned absolutely.
    """

    rows: Tuple[PPRow, ...]
    corrections: Tuple[Tuple[int, int], ...]  # (constant_value, window_lo)
    windows: Tuple[Tuple[int, int], ...]
    product_width: int

    def window_of(self, position):
        for lo, hi in self.windows:
            if lo <= position < hi:
                return (lo, hi)
        raise BitWidthError(f"bit {position} is outside every window")

    def total(self):
        """Sum the array with carries killed at window boundaries.

        This is the value the compressor tree + lane-split CPA produce.
        """
        result = 0
        for lo, hi in self.windows:
            acc = 0
            for row in self.rows:
                if lo <= row.offset < hi:
                    if row.msb_position >= hi:
                        raise BitWidthError(
                            f"row at offset {row.offset} crosses window ({lo},{hi})"
                        )
                    acc += (row.payload + row.carry) << (row.offset - lo)
            for value, wlo in self.corrections:
                if wlo == lo:
                    acc += value
            result += (acc & mask(hi - lo)) << lo
        return result

    def max_height(self):
        """Maximum number of array bits stacked in any column.

        Sec. II: 17 for the 64-bit radix-16 array (before the [8]
        height-reduction trick).
        """
        heights = [0] * self.product_width
        for row in self.rows:
            for b in range(row.width):
                pos = row.offset + b
                if pos < self.product_width:
                    heights[pos] += 1
            if row.signed:  # the "+1" slot exists whenever the digit may be < 0
                heights[row.offset] += 1
        for value, wlo in self.corrections:
            b = 0
            v = value
            while v:
                if v & 1:
                    heights[wlo + b] += 1
                v >>= 1
                b += 1
        return max(heights) if heights else 0


def _signed_possible(group_index, width, radix_log2):
    """A recoded digit can only be negative when its group MSB exists."""
    return radix_log2 * group_index + radix_log2 - 1 < width


def build_pp_array(
    x,
    y,
    width=64,
    radix_log2=4,
    offset=0,
    window=None,
    lane="full",
    product_width=None,
):
    """Build the encoded PP array for one ``width x width`` multiplication.

    ``offset`` shifts the whole array (used to place the upper binary32
    lane at bit 64); ``window`` is the carry-isolation range, defaulting
    to ``(offset, offset + 2*width_rounded)``.
    """
    k = radix_log2
    if product_width is None:
        product_width = offset + 2 * width
    if window is None:
        window = (offset, product_width)
    wlo, whi = window
    digits = recode_minimally_redundant(y, width, k)
    rows = []
    correction = 0
    for i, d in enumerate(digits):
        row_offset = offset + k * i
        if _signed_possible(i, width, k):
            w = width + k
            m = abs(d) * x
            if d < 0:
                pattern = m ^ mask(w)
                carry = 1
            else:
                pattern = m
                carry = 0
            payload = pattern ^ (1 << (w - 1))  # store complement of sign
            rows.append(
                PPRow(payload=payload, offset=row_offset, carry=carry,
                      width=w, signed=True, digit=d, lane=lane)
            )
            correction -= 1 << (row_offset + w - 1)
        else:
            # Rows whose group extends past the operand width can never
            # go negative: no encoding, no correction.  Their digit is
            # also provably bounded, which bounds the row field.
            avail = max(0, width - k * i)
            if avail == 0:
                prev_msb_exists = i > 0 and (k * (i - 1) + k - 1) < width
                max_digit = 1 if prev_msb_exists else 0
            else:
                max_digit = 1 << avail
            if max_digit == 0:
                if d != 0:
                    raise BitWidthError(
                        f"digit {d} in a provably-zero row {i}")
                continue
            payload = d * x
            w = width + max(0, max_digit.bit_length() - 1)
            rows.append(
                PPRow(payload=payload, offset=row_offset, carry=0,
                      width=w, signed=False, digit=d, lane=lane)
            )
    # The correction was accumulated at absolute bit positions (all of
    # them >= wlo); reduce it to window-local coordinates before folding
    # modulo the window width.
    if correction % (1 << wlo):
        raise BitWidthError("correction bits below the window base")
    correction_local = (correction >> wlo) % (1 << (whi - wlo))
    return PPArray(
        rows=tuple(rows),
        corrections=((correction_local, wlo),),
        windows=(window,),
        product_width=product_width,
    )


def build_signed_pp_array(x, y, width=64, radix_log2=4, product_width=None):
    """PP array for a **signed** (two's complement) multiplication.

    A classic property of minimally redundant recoding: for a two's
    complement multiplier the final transfer digit is simply *dropped*
    (its weight 2**width contribution cancels the sign bit's -2**width),
    and each row multiplies the sign-extended multiplicand.  The paper's
    unit is unsigned-only; this is the natural signed extension kept at
    the reference level (tests cross-check against Python ``*``).

    ``x`` and ``y`` are given as ``width``-bit two's complement patterns;
    the array total, reduced modulo ``2**product_width``, is the signed
    product's two's complement encoding.
    """
    from repro.bits.utils import from_twos_complement

    k = radix_log2
    if product_width is None:
        product_width = 2 * width
    if width % k:
        raise BitWidthError(
            f"signed arrays need width divisible by {k} (got {width})"
        )
    x_signed = from_twos_complement(x, width)
    digits = recode_minimally_redundant(y, width, k)[:-1]   # drop transfer
    w = width + k
    rows = []
    correction = 0
    for i, d in enumerate(digits):
        row_offset = k * i
        value = d * x_signed                 # in (-2**(w-1), 2**(w-1))
        payload_full = value & mask(w)
        sign = (payload_full >> (w - 1)) & 1
        payload = payload_full ^ (1 << (w - 1))   # store complement of sign
        rows.append(PPRow(payload=payload, offset=row_offset, carry=0,
                          width=w, signed=True, digit=d))
        correction -= 1 << (row_offset + w - 1)
    correction_local = correction % (1 << product_width)
    return PPArray(
        rows=tuple(rows),
        corrections=((correction_local, 0),),
        windows=((0, product_width),),
        product_width=product_width,
    )


def build_dual_lane_pp_array(x_lo, y_lo, x_hi, y_hi, lane_width=24,
                             radix_log2=4, product_width=128):
    """Build the dual binary32 array of Fig. 4.

    The lower lane computes ``x_lo * y_lo`` in bits ``[0, 64)``; the
    upper lane computes ``x_hi * y_hi`` in bits ``[64, 128)``.  Each lane
    is a complete ``lane_width x lane_width`` radix-``2**k`` array with
    its own sign-extension correction; no row and no correction bit
    crosses the boundary, so killing the column-64 carry fully decouples
    the lanes (property-tested).
    """
    boundary = product_width // 2
    lo = build_pp_array(
        x_lo, y_lo, width=lane_width, radix_log2=radix_log2,
        offset=0, window=(0, boundary), lane="lo", product_width=product_width,
    )
    hi = build_pp_array(
        x_hi, y_hi, width=lane_width, radix_log2=radix_log2,
        offset=boundary, window=(boundary, product_width), lane="hi",
        product_width=product_width,
    )
    return PPArray(
        rows=lo.rows + hi.rows,
        corrections=lo.corrections + hi.corrections,
        windows=((0, boundary), (boundary, product_width)),
        product_width=product_width,
    )


def build_quad_lane_pp_array(xs, ys, lane_width=11, radix_log2=4,
                             product_width=128):
    """Four independent binary16 lanes at 32-bit pitch (extension).

    Not part of the paper's unit: it demonstrates that the Fig. 4
    sectioning generalizes — four 11-bit significand products fit the
    same 128-bit array with three carry-kill boundaries.  Lane ``k``
    computes ``xs[k] * ys[k]`` in bits ``[32k, 32k + 32)``.
    """
    if len(xs) != 4 or len(ys) != 4:
        raise BitWidthError("quad arrays take exactly four operand pairs")
    pitch = product_width // 4
    lanes = []
    for k in range(4):
        lanes.append(build_pp_array(
            xs[k], ys[k], width=lane_width, radix_log2=radix_log2,
            offset=pitch * k, window=(pitch * k, pitch * (k + 1)),
            lane=f"q{k}", product_width=product_width,
        ))
    return PPArray(
        rows=tuple(r for lane in lanes for r in lane.rows),
        corrections=tuple(c for lane in lanes for c in lane.corrections),
        windows=tuple((pitch * k, pitch * (k + 1)) for k in range(4)),
        product_width=product_width,
    )


def array_row_index(row, radix_log2=4, boundary=64):
    """Map a PP row back to its physical row index in the shared array.

    In the hardware of Fig. 4 the upper-lane row for digit ``j`` occupies
    physical array row ``j + 8`` (its multiple sits 32 bits up inside the
    68-bit row); this helper reproduces that mapping for reports.
    """
    k = radix_log2
    if row.lane == "hi":
        lane_digit = (row.offset - boundary) // k
        return lane_digit + boundary // (2 * k)
    return row.offset // k


def occupancy_grid(array, radix_log2=4):
    """Render the array arrangement of Fig. 4 as a list of strings.

    Each line is one physical array row; ``#`` marks field bits, ``c``
    the two's complement carry bit, ``.`` empty columns.  Constant
    correction rows are appended at the bottom.
    """
    width = array.product_width
    grid = {}
    for row in array.rows:
        idx = array_row_index(row, radix_log2)
        line = grid.setdefault(idx, ["."] * width)
        for b in range(row.width):
            pos = row.offset + b
            if pos < width:
                line[pos] = "#"
        line[row.offset] = "c" if row.carry or row.signed else line[row.offset]
    lines = []
    for idx in sorted(grid):
        lines.append("".join(reversed(grid[idx])))
    for value, wlo in array.corrections:
        line = ["."] * width
        b = 0
        v = value
        while v:
            if v & 1:
                line[wlo + b] = "1"
            v >>= 1
            b += 1
        lines.append("".join(reversed(line)))
    return lines
