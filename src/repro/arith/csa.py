"""Carry-save addition primitives (reference semantics).

These are the bit-level building blocks of the reduction tree
(Sec. II): full adders (3:2 compressors), half adders, and the 4:2
compressor built from two chained full adders.
"""

from repro.bits.utils import mask
from repro.errors import BitWidthError


def half_adder(a, b):
    """Return ``(sum, carry)`` of two bits."""
    _check_bits(a, b)
    return a ^ b, a & b


def full_adder(a, b, c):
    """Return ``(sum, carry)`` of three bits (a 3:2 compressor)."""
    _check_bits(a, b, c)
    s = a ^ b ^ c
    carry = (a & b) | (a & c) | (b & c)
    return s, carry


def compress_4_2(a, b, c, d, cin):
    """A 4:2 compressor cell: 5 inputs in, ``(sum, carry, cout)`` out.

    Built from two chained full adders; ``cout`` depends only on
    ``a, b, c`` so a row of 4:2 cells has no horizontal ripple.
    """
    _check_bits(a, b, c, d, cin)
    s1, cout = full_adder(a, b, c)
    s, carry = full_adder(s1, d, cin)
    return s, carry, cout


def compress_3_2(word_a, word_b, word_c, width):
    """Word-level carry-save addition: three words to ``(sum, carry)``.

    ``sum`` keeps the bitwise XOR; ``carry`` is the majority shifted one
    position left.  The invariant ``a + b + c == sum + carry`` holds
    modulo ``2**(width+1)``.
    """
    for w in (word_a, word_b, word_c):
        if w < 0 or w > mask(width):
            raise BitWidthError(f"{w:#x} is not an unsigned {width}-bit value")
    s = word_a ^ word_b ^ word_c
    carry = ((word_a & word_b) | (word_a & word_c) | (word_b & word_c)) << 1
    return s, carry


def compress_words_4_2(word_a, word_b, word_c, word_d, width):
    """Word-level 4:2 compression of four words to ``(sum, carry)``.

    Invariant: ``a + b + c + d == sum + carry`` (modulo ``2**(width+2)``).
    """
    s1, c1 = compress_3_2(word_a, word_b, word_c, width)
    s, c2 = compress_3_2(s1, c1, word_d, width + 1)
    return s, c2


def _check_bits(*bits):
    for b in bits:
        if b not in (0, 1):
            raise BitWidthError(f"expected a bit, got {b!r}")
