"""Reference models of the carry-propagate adders used in the datapath.

The structural adders in :mod:`repro.circuits.adders` are generated from
the same recurrences; these functions expose the internal carry vectors
so the tests can compare the two layers node by node, not just at the
outputs.
"""

from repro.bits.utils import mask
from repro.errors import BitWidthError


def _check(a, b, width):
    for v in (a, b):
        if v < 0 or v > mask(width):
            raise BitWidthError(f"{v:#x} is not an unsigned {width}-bit value")


def ripple_add(a, b, width, carry_in=0):
    """Ripple-carry addition; returns ``(sum, carry_out, carries)``.

    ``carries[i]`` is the carry *into* bit ``i`` (``carries[0]`` is the
    carry-in), so the list has ``width + 1`` entries.
    """
    _check(a, b, width)
    carries = [carry_in]
    total = 0
    c = carry_in
    for i in range(width):
        ai = (a >> i) & 1
        bi = (b >> i) & 1
        s = ai ^ bi ^ c
        c = (ai & bi) | (ai & c) | (bi & c)
        total |= s << i
        carries.append(c)
    return total, c, carries


def propagate_generate(a, b, width):
    """Bitwise propagate/generate words for prefix adders."""
    _check(a, b, width)
    return a ^ b, a & b


def kogge_stone_carries(a, b, width, carry_in=0):
    """Carries of a Kogge-Stone prefix adder; returns ``(sum, cout, carries)``.

    The prefix network combines (g, p) pairs with span doubling each
    level — ``ceil(log2(width))`` levels, minimal depth, maximal wiring.
    This is the adder style used for the paper's "fast CPAs".
    """
    p, g = propagate_generate(a, b, width)
    gp = [((g >> i) & 1, (p >> i) & 1) for i in range(width)]
    span = 1
    while span < width:
        nxt = list(gp)
        for i in range(span, width):
            gi, pi = gp[i]
            gj, pj = gp[i - span]
            nxt[i] = (gi | (pi & gj), pi & pj)
        gp = nxt
        span <<= 1
    carries = [carry_in]
    for i in range(width):
        gi, pi = gp[i]
        carries.append(gi | (pi & carry_in))
    total = 0
    for i in range(width):
        s = ((p >> i) & 1) ^ carries[i]
        total |= s << i
    return total, carries[width], carries


def brent_kung_carries(a, b, width, carry_in=0):
    """Carries of a Brent-Kung prefix adder (sparse tree, ~2 log2 n depth).

    Cheaper in area than Kogge-Stone, slower — one point of the CPA
    ablation in the benchmarks.
    """
    p, g = propagate_generate(a, b, width)
    gp = {}
    for i in range(width):
        gp[(i, i)] = ((g >> i) & 1, (p >> i) & 1)

    def combine(hi, lo_hi, lo_lo):
        gh, ph = gp[lo_hi]
        gl, pl = gp[lo_lo]
        gp[hi] = (gh | (ph & gl), ph & pl)

    # Up-sweep: build power-of-two group terms.
    span = 1
    while span < width:
        for i in range(2 * span - 1, width, 2 * span):
            combine((i - 2 * span + 1, i), (i - span + 1, i), (i - 2 * span + 1, i - span))
        span <<= 1
    # Down-sweep: fill in the remaining prefixes (0..i).
    prefixes = {}
    for i in range(width):
        lo = 0
        acc = None
        j = i
        # Decompose [0, i] into the power-of-two groups available above.
        while j >= lo:
            size = 1
            while lo % (2 * size) == 0 and lo + 2 * size - 1 <= j:
                size *= 2
            seg = (lo, lo + size - 1)
            gseg, pseg = gp[seg]
            if acc is None:
                acc = (gseg, pseg)
            else:
                ga, pa = acc
                acc = (gseg | (pseg & ga), pseg & pa)
            lo += size
        prefixes[i] = acc
    carries = [carry_in]
    for i in range(width):
        gi, pi = prefixes[i]
        carries.append(gi | (pi & carry_in))
    total = 0
    for i in range(width):
        s = ((p >> i) & 1) ^ carries[i]
        total |= s << i
    return total, carries[width], carries


def carry_select_add(a, b, width, block=8, carry_in=0):
    """Carry-select addition with fixed-size blocks.

    Each block is computed for both carry-in values; the real carry
    selects.  Another point of the CPA ablation.
    """
    _check(a, b, width)
    total = 0
    c = carry_in
    for lo in range(0, width, block):
        w = min(block, width - lo)
        ab = (a >> lo) & mask(w)
        bb = (b >> lo) & mask(w)
        s0 = ab + bb
        s1 = ab + bb + 1
        chosen = s1 if c else s0
        total |= (chosen & mask(w)) << lo
        c = chosen >> w
    return total, c


def multi_window_add(a, b, width, boundaries):
    """Addition with carries killed at every boundary position.

    ``boundaries`` are ascending bit positions inside ``(0, width)``;
    each window ``[lo, hi)`` sums independently (the generalization of
    the paper's divided CPA to more than two lanes).
    """
    _check(a, b, width)
    cuts = [0] + sorted(boundaries) + [width]
    for lo, hi in zip(cuts, cuts[1:]):
        if not 0 <= lo < hi <= width:
            raise BitWidthError(f"bad window ({lo}, {hi}) for width {width}")
    total = 0
    for lo, hi in zip(cuts, cuts[1:]):
        w = hi - lo
        window = (((a >> lo) & mask(w)) + ((b >> lo) & mask(w))) & mask(w)
        total |= window << lo
    return total


def lane_split_add(a, b, width, boundary, split, carry_in=0):
    """Addition with an optional carry kill at ``boundary``.

    This models the paper's divided CPA for dual binary32 operation
    (Sec. III-B): when ``split`` is true the carry out of bit
    ``boundary - 1`` is not propagated into bit ``boundary``.
    """
    _check(a, b, width)
    if not 0 < boundary < width:
        raise BitWidthError(f"boundary {boundary} must be inside (0, {width})")
    lo_w = boundary
    hi_w = width - boundary
    lo_sum = (a & mask(lo_w)) + (b & mask(lo_w)) + carry_in
    lo_carry = lo_sum >> lo_w
    lo_sum &= mask(lo_w)
    hi_cin = 0 if split else lo_carry
    hi_sum = ((a >> lo_w) & mask(hi_w)) + ((b >> lo_w) & mask(hi_w)) + hi_cin
    cout = hi_sum >> hi_w
    hi_sum &= mask(hi_w)
    return lo_sum | (hi_sum << lo_w), cout
