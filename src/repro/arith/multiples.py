"""Pre-computation of the multiplicand multiples needed by high radices.

Radix-16 PP generation selects among ``{0, X, 2X, ..., 8X}``.  The even
multiples are wiring (left shifts); the *odd* multiples 3X, 5X and 7X
each need one carry-propagate addition (Sec. II):

*   ``3X = X + 2X``
*   ``5X = X + 4X``
*   ``7X = X + 8X ... `` — the paper computes ``7X = 8X - X``?  No: it
    lists ``8X + X = 7X`` with a typo; the adder actually implemented is
    ``8X - X`` (equivalently ``8X + ~X + 1``).  We implement ``7X = 8X - X``
    because it is a single CPA like the others, and we also expose the
    alternative ``7X = 3X + 4X`` (which would serialize two CPAs) for the
    ablation study.

``6X`` is ``3X`` shifted left once, again wiring.
"""

from dataclasses import dataclass

from repro.bits.utils import mask
from repro.errors import BitWidthError


@dataclass(frozen=True)
class MultipleSet:
    """All multiples ``0..max_multiple`` of a ``width``-bit multiplicand.

    ``multiple(m)`` returns ``m * x`` exactly; every value fits in
    ``width + ceil(log2(max_multiple))`` bits.
    """

    x: int
    width: int
    max_multiple: int

    def __post_init__(self):
        if self.x < 0 or self.x > mask(self.width):
            raise BitWidthError(
                f"{self.x:#x} is not an unsigned {self.width}-bit value"
            )
        if self.max_multiple < 1:
            raise BitWidthError("max_multiple must be >= 1")

    @property
    def result_width(self):
        """Bits needed to hold the largest multiple."""
        extra = (self.max_multiple).bit_length()
        return self.width + extra

    def multiple(self, m):
        if not 0 <= m <= self.max_multiple:
            raise BitWidthError(
                f"multiple {m} outside supported range 0..{self.max_multiple}"
            )
        return m * self.x

    def odd_multiples_needed(self):
        """The odd multiples > 1 requiring a carry-propagate addition."""
        return [m for m in range(3, self.max_multiple + 1, 2)]


def odd_multiples(x, width, radix_log2):
    """Compute the odd multiples a radix-``2**k`` PP generator pre-computes.

    Returns a dict ``{m: m*x}`` for odd ``m`` in ``3 .. 2**(k-1)-1`` plus
    the top multiple when it is odd.  For radix-16 (``k=4``) this is
    ``{3: 3x, 5: 5x, 7: 7x}``, exactly the three CPAs of Fig. 1.
    """
    if x < 0 or x > mask(width):
        raise BitWidthError(f"{x:#x} is not an unsigned {width}-bit value")
    top = 1 << (radix_log2 - 1)
    return {m: m * x for m in range(3, top + 1) if m % 2 == 1}


def multiples_for_radix(x, width, radix_log2):
    """Build the full :class:`MultipleSet` used by a radix-``2**k`` PPGEN."""
    return MultipleSet(x=x, width=width, max_multiple=1 << (radix_log2 - 1))
