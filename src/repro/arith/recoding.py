"""Multiplier recoding into minimally redundant high-radix digit sets.

The paper recodes the 64-bit multiplier operand ``Y`` into radix-16
digits in the minimally redundant set ``{-8, ..., 8}`` (Sec. II).  The
recoding is *carry free*: the transfer digit out of each 4-bit group is
simply the group's most significant bit, so all digits can be produced in
parallel.

The same construction works for any radix ``2**k``:

*   group ``i`` holds bits ``k*i .. k*i+k-1`` of ``Y`` with value ``y_i``;
*   the transfer out of group ``i`` is ``t_{i+1} = 1`` iff
    ``y_i >= 2**(k-1)`` (the group MSB);
*   the recoded digit is ``d_i = y_i - 2**k * t_{i+1} + t_i``,
    which lies in ``[-2**(k-1), 2**(k-1)]``.

The extra most significant digit is the final transfer and is always
0 or 1 — for a 64-bit radix-16 recoding this is the 17th partial product
discussed in the paper.
"""

from repro.bits.utils import mask
from repro.errors import BitWidthError


def recode_minimally_redundant(y, width, radix_log2):
    """Recode unsigned ``y`` into minimally redundant radix-``2**k`` digits.

    Returns a list of ``ceil(width / k) + 1`` signed digits, least
    significant first, each in ``[-2**(k-1), 2**(k-1)]``.  The invariant
    ``sum(d * (2**k)**i) == y`` always holds (property-tested).
    """
    k = radix_log2
    if k < 1:
        raise BitWidthError(f"radix_log2 must be >= 1, got {k}")
    if width < 1:
        raise BitWidthError(f"width must be >= 1, got {width}")
    if y < 0 or y > mask(width):
        raise BitWidthError(f"{y:#x} is not an unsigned {width}-bit value")

    groups = (width + k - 1) // k
    half = 1 << (k - 1)
    full = 1 << k
    digits = []
    transfer = 0
    for i in range(groups):
        y_i = (y >> (k * i)) & mask(k)
        transfer_out = 1 if y_i >= half else 0
        digits.append(y_i - full * transfer_out + transfer)
        transfer = transfer_out
    digits.append(transfer)
    return digits


def radix16_digits(y, width=64):
    """The paper's radix-16 recoding: digits in ``{-8..8}``, MSB-last.

    For ``width == 64`` this yields 17 digits, matching the 17 partial
    products of Sec. II; the top digit is 0 or 1 (the transfer out of the
    most significant 4-bit group).
    """
    return recode_minimally_redundant(y, width, 4)


def booth_radix4_digits(y, width=64):
    """Radix-4 (modified Booth) recoding: digits in ``{-2..2}``.

    For a 64-bit unsigned operand this yields 33 digits, the partial
    product count of the paper's radix-4 baseline (Sec. II-A).
    """
    return recode_minimally_redundant(y, width, 2)


def radix8_digits(y, width=64):
    """Radix-8 recoding: digits in ``{-4..4}``.

    The paper chose not to implement radix-8 (it needs the 3X
    pre-computation like radix-16 but has a taller tree); we provide it
    for the ablation study.
    """
    return recode_minimally_redundant(y, width, 3)


def digits_value(digits, radix_log2):
    """Reconstruct the integer encoded by a digit list (LSB first)."""
    value = 0
    for i, d in enumerate(digits):
        value += d << (radix_log2 * i)
    return value


def digit_count(width, radix_log2):
    """Number of recoded digits (= partial products) for an operand width."""
    return (width + radix_log2 - 1) // radix_log2 + 1


def recoder_digit_bits(digit, radix_log2):
    """Encode a recoded digit as (sign, one_hot_magnitude) control bits.

    This is the control representation consumed by the PPGEN mux of
    Fig. 1: a sign bit driving the XOR row, and a one-hot magnitude
    selecting among ``{0, X, 2X, ..., 2**(k-1) X}``.
    """
    half = 1 << (radix_log2 - 1)
    if not -half <= digit <= half:
        raise BitWidthError(
            f"digit {digit} outside minimally redundant radix-{1 << radix_log2} set"
        )
    sign = 1 if digit < 0 else 0
    magnitude = abs(digit)
    one_hot = [1 if magnitude == m else 0 for m in range(half + 1)]
    return sign, one_hot
