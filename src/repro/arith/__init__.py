"""Reference (algorithmic) implementations of the paper's arithmetic.

Everything in this package manipulates plain integers.  The structural
circuits in :mod:`repro.circuits` are generated to mirror these
algorithms gate by gate, and the test suite cross-checks the two layers
against each other exhaustively and property-based.
"""

from repro.arith.adders_ref import (
    brent_kung_carries,
    carry_select_add,
    kogge_stone_carries,
    ripple_add,
)
from repro.arith.csa import compress_3_2, compress_4_2, full_adder, half_adder
from repro.arith.multiples import MultipleSet, odd_multiples
from repro.arith.partial_products import (
    PPArray,
    PPRow,
    build_dual_lane_pp_array,
    build_pp_array,
)
from repro.arith.recoding import (
    booth_radix4_digits,
    radix16_digits,
    recode_minimally_redundant,
)
from repro.arith.trees import (
    ReductionSchedule,
    dadda_sequence,
    reduce_columns,
    reduce_pp_array,
)

__all__ = [
    "MultipleSet",
    "PPArray",
    "PPRow",
    "ReductionSchedule",
    "booth_radix4_digits",
    "brent_kung_carries",
    "build_dual_lane_pp_array",
    "build_pp_array",
    "carry_select_add",
    "compress_3_2",
    "compress_4_2",
    "dadda_sequence",
    "full_adder",
    "half_adder",
    "kogge_stone_carries",
    "odd_multiples",
    "radix16_digits",
    "recode_minimally_redundant",
    "reduce_columns",
    "reduce_pp_array",
    "ripple_add",
]
