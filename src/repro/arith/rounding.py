"""The speculative combined normalization/rounding scheme of Fig. 3.

The multiplier tree leaves the product as a carry-save pair ``(S, C)``.
Rather than adding them, normalizing, then rounding (a second carry
propagation), the paper computes **both** rounded candidates at once:

*   ``P1 = S + C + R1`` — rounding injected assuming the leading '1'
    lands in the high position (bit 105 for binary64);
*   ``P0 = S + C + R0`` — rounding injected one position lower.

A 2:1 mux driven by the actual leading-bit position selects the correct
candidate; the not-taken candidate is shifted out by wiring.  Each path
needs a 3:2 CSA (to fold the injection vector) and a fast CPA.

Injection positions: the kept significand for the high case is bits
``high_leading .. high_leading - p + 1``, so the round bit sits at
``high_leading - p``; the low case is one position further down:

* binary64: ``R1 = 2**52``, ``R0 = 2**51``;
* dual binary32: ``R1 = 2**87 + 2**23``, ``R0 = 2**86 + 2**22``
  (verbatim from Sec. III-B);
* int64: ``R1 = R0 = 0`` and the mux is forced to the unshifted path.

**Fidelity notes.**  (1) Fig. 3 labels the binary64 vectors ``R1`` at
bit 53 and ``R0`` at bit 52, but the prose one paragraph earlier says
rounding "adds '1' in position 52" for the kept field ``P105..P53``, and
the paper's own binary32 vectors (bits 87/23 and 86/22 for kept fields
``111..88`` / ``47..24``) follow the prose.  We implement the
self-consistent positions (52/51 for binary64).  (2) The mux select must
be the MSB of the **low-injection** path ``P0``: when a low-leading
product's rounding carries it up to the high position (mantissa near
all-ones), ``P0``'s MSB flips and ``P1`` — whose injection lands one bit
higher — then holds exactly the renormalized ``1.0`` pattern.  Selecting
on ``P1``'s MSB instead would misround products in
``[2**105 - 2**52, 2**105 - 2**51)`` by one ulp; the tests cover that
window explicitly.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.arith.adders_ref import lane_split_add
from repro.bits.utils import mask
from repro.errors import BitWidthError

PRODUCT_WIDTH = 128
LANE_BOUNDARY = 64


@dataclass(frozen=True)
class LaneGeometry:
    """Bit positions of one multiplication lane inside the 128-bit array."""

    name: str
    high_leading_bit: int    # leading-one position when no normalization shift
    significand_bits: int    # bits kept after rounding (24 or 53)

    @property
    def r1_position(self):
        """Injection position when the leading one is in the high spot."""
        return self.high_leading_bit - self.significand_bits

    @property
    def r0_position(self):
        return self.r1_position - 1

    @property
    def significand_lsb(self):
        """LSB of the kept field in the unshifted (high) case."""
        return self.high_leading_bit - self.significand_bits + 1


# Geometry straight from the paper's text.
FP64_LANE = LaneGeometry("fp64", high_leading_bit=105, significand_bits=53)
FP32_LOW_LANE = LaneGeometry("fp32_lo", high_leading_bit=47, significand_bits=24)
FP32_HIGH_LANE = LaneGeometry("fp32_hi", high_leading_bit=111, significand_bits=24)

#: Quad binary16 extension: four 11-bit-significand lanes at 32-bit
#: pitch (product bits [32k, 32k+22)); not in the paper — it demonstrates
#: that the lane-sectioning idea generalizes (see DESIGN.md).
FP16_LANES = tuple(
    LaneGeometry(f"fp16_{k}", high_leading_bit=32 * k + 21,
                 significand_bits=11)
    for k in range(4)
)


def injection_vectors(lanes):
    """Build the (R1, R0) injection constants for a set of lanes."""
    r1 = 0
    r0 = 0
    for lane in lanes:
        r1 |= 1 << lane.r1_position
        r0 |= 1 << lane.r0_position
    return r1, r0


@dataclass(frozen=True)
class NormRoundResult:
    """Outcome of the Fig. 3 datapath for one lane."""

    significand: int          # normalized, rounded, with the hidden bit
    exponent_increment: int   # 1 when the leading one was in the high spot
    used_high_path: bool      # which CPA result the mux selected


def normalize_round_lane(p1, p0, lane):
    """Apply the Fig. 3 mux/truncate for one lane.

    ``p1``/``p0`` are the full-width speculative sums.  The selection is
    driven by ``p0``'s bit at the lane's high leading position (see the
    module docstring for why the low-injection path is the correct
    discriminator).
    """
    sel_high = (p0 >> lane.high_leading_bit) & 1
    if sel_high:
        chosen = p1
    else:
        chosen = (p0 << 1) & mask(PRODUCT_WIDTH)
    significand = (chosen >> lane.significand_lsb) & mask(lane.significand_bits)
    return NormRoundResult(
        significand=significand,
        exponent_increment=sel_high,
        used_high_path=bool(sel_high),
    )


def speculative_sums(s, c, r1, r0, split=False):
    """The two CPA results of Fig. 3, with the dual-lane carry kill.

    ``split=True`` divides both CPAs at bit 64 (Sec. III-B: "The two
    CPAs ... are divided in an upper and lower part").
    """
    for word in (s, c, r1, r0):
        if word < 0 or word > mask(PRODUCT_WIDTH):
            raise BitWidthError(f"{word:#x} is not a {PRODUCT_WIDTH}-bit word")
    p1 = _three_way_add(s, c, r1, split)
    p0 = _three_way_add(s, c, r0, split)
    return p1, p0


def _three_way_add(s, c, r, split):
    # 3:2 CSA first (the extra CSA of Fig. 3), then the lane-split CPA.
    xor = s ^ c ^ r
    maj = ((s & c) | (s & r) | (c & r)) << 1
    if split:
        # The CSA carry crossing the lane boundary is blanked as well.
        maj &= ~(1 << LANE_BOUNDARY) & mask(PRODUCT_WIDTH)
    else:
        maj &= mask(PRODUCT_WIDTH)
    total, _cout = lane_split_add(
        xor, maj, PRODUCT_WIDTH, LANE_BOUNDARY, split=split
    )
    return total


def normalize_round_fp64(s, c):
    """Full Fig. 3 flow for a binary64 product; returns one lane result."""
    r1, r0 = injection_vectors([FP64_LANE])
    p1, p0 = speculative_sums(s, c, r1, r0, split=False)
    return normalize_round_lane(p1, p0, FP64_LANE)


def normalize_round_fp32_dual(s, c):
    """Full Fig. 3 flow for the dual binary32 case; returns (low, high)."""
    r1, r0 = injection_vectors([FP32_LOW_LANE, FP32_HIGH_LANE])
    p1, p0 = speculative_sums(s, c, r1, r0, split=True)
    low = normalize_round_lane(p1, p0, FP32_LOW_LANE)
    high = normalize_round_lane(p1, p0, FP32_HIGH_LANE)
    return low, high


def normalize_round_fp16_quad(s, c):
    """Fig. 3 flow generalized to four binary16 lanes (extension).

    The CPAs are divided at bits 32/64/96 (carry kill at every lane
    boundary) and each lane gets its own injection pair and mux.
    """
    from repro.arith.adders_ref import multi_window_add

    r1, r0 = injection_vectors(FP16_LANES)
    boundaries = (32, 64, 96)

    def path(r):
        xor = s ^ c ^ r
        maj = ((s & c) | (s & r) | (c & r)) << 1
        for b in boundaries:
            maj &= ~(1 << b) & mask(PRODUCT_WIDTH)
        maj &= mask(PRODUCT_WIDTH)
        return multi_window_add(xor, maj, PRODUCT_WIDTH, boundaries)

    p1, p0 = path(r1), path(r0)
    return tuple(normalize_round_lane(p1, p0, lane) for lane in FP16_LANES)


def int64_product(s, c):
    """The int64 path: single CPA, no injection, no shift (Sec. III-A)."""
    return _three_way_add(s, c, 0, split=False)
