"""Column-based partial product reduction (the TREE of Fig. 2).

The reducer is written once, generically, over opaque *items*: the
reference layer instantiates it with integer bits and checks sums, the
structural layer (:mod:`repro.circuits.compressor_tree`) instantiates it
with netlist wires.  Both layers therefore share one schedule, which is
what makes the gate-level circuits provably equivalent to the reference.

The schedule is Dadda's: reduce the maximum column height through the
sequence ``2, 3, 4, 6, 9, 13, 19, 28, ...`` using full adders (3:2) and
half adders, placing each carry into the next column of the same stage.
A 17-high radix-16 array needs 6 stages; a 33-high radix-4 array needs
8 — the deeper radix-4 tree is exactly the paper's motivation for
radix 16.
"""

from dataclasses import dataclass, field
from typing import List

from repro.errors import BitWidthError


def dadda_sequence(max_height):
    """Dadda's target-height sequence up to ``max_height``, ascending."""
    if max_height < 2:
        return [2]
    seq = [2]
    while seq[-1] < max_height:
        seq.append(seq[-1] * 3 // 2)
    if seq[-1] >= max_height:
        seq = [t for t in seq if t < max_height] or [2]
    return seq


@dataclass
class ReductionSchedule:
    """Statistics of one reduction run (used by area/ablation reports)."""

    stages: int = 0
    full_adders: int = 0
    half_adders: int = 0
    killed_carries: int = 0
    stage_heights: List[int] = field(default_factory=list)


def reduce_columns(columns, fa, ha, carry_hook=None, target=2,
                   order_key=None):
    """Reduce ``columns`` (list of lists of items) to height <= ``target``.

    ``fa(a, b, c) -> (sum, carry)`` and ``ha(a, b) -> (sum, carry)`` are
    supplied by the caller.  ``carry_hook(item, from_column)`` is applied
    to every carry moving from ``from_column`` into ``from_column + 1``;
    returning ``None`` kills the carry (used at lane boundaries).
    ``order_key`` (item -> sortable) makes each stage consume the
    earliest-arriving items first, the ordering delay-aware synthesis
    uses to minimize path depth and glitching.

    Returns ``(columns, schedule)`` where every column of the result has
    at most ``target`` items.  The input list is not modified.
    """
    if target < 1:
        raise BitWidthError(f"target height must be >= 1, got {target}")
    work = [list(col) for col in columns]
    schedule = ReductionSchedule()
    max_height = max((len(c) for c in work), default=0)
    schedule.stage_heights.append(max_height)
    if max_height <= target:
        return work, schedule

    targets = [t for t in reversed(dadda_sequence(max_height)) if t >= target]
    if not targets or targets[-1] != target:
        targets.append(target)
    for stage_target in targets:
        work = _one_stage(work, stage_target, fa, ha, carry_hook, schedule,
                          order_key)
        schedule.stages += 1
        schedule.stage_heights.append(max(len(c) for c in work))
    return work, schedule


def _one_stage(columns, stage_target, fa, ha, carry_hook, schedule,
               order_key=None):
    """One Dadda stage.

    Carries produced by column ``i`` arrive at column ``i+1`` *within the
    same stage accounting* but are pass-through there: they count toward
    the post-stage height yet are not re-compressed, and neither are the
    stage's own sums.  Re-consuming either would chain compressors into
    a horizontal ripple across the array (O(width) depth instead of
    O(stages)).  Only when a column has exhausted its own items and is
    still over target (possible in the last stages) does the fallback
    compress fresh values, paying the minimal extra depth.
    """
    out = []
    carries = []                     # emitted by column i-1, arriving at i
    for i, col in enumerate(columns):
        items = list(col)
        if order_key is not None:
            items.sort(key=order_key)
        incoming = carries
        carries = []

        def emit(carry, col_index=i):
            routed = _route_carry(carry, col_index, carry_hook, schedule)
            if routed is not None:
                carries.append(routed)

        done = []
        while (len(items) + len(done) + len(incoming) > stage_target
               and len(items) >= 2):
            over = len(items) + len(done) + len(incoming) - stage_target
            if len(items) >= 3 and over >= 2:
                a, b, c = items.pop(0), items.pop(0), items.pop(0)
                s, carry = fa(a, b, c)
                schedule.full_adders += 1
            else:
                a, b = items.pop(0), items.pop(0)
                s, carry = ha(a, b)
                schedule.half_adders += 1
            done.append(s)
            emit(carry)
        merged = items + done + incoming
        # Fallback: original items exhausted but the column is still too
        # tall (its height was dominated by same-stage arrivals).
        while len(merged) > stage_target and len(merged) >= 2:
            if len(merged) >= 3 and len(merged) - stage_target >= 2:
                a, b, c = merged.pop(0), merged.pop(0), merged.pop(0)
                s, carry = fa(a, b, c)
                schedule.full_adders += 1
            else:
                a, b = merged.pop(0), merged.pop(0)
                s, carry = ha(a, b)
                schedule.half_adders += 1
            merged.append(s)
            emit(carry)
        out.append(merged)
    if carries:
        # A carry rippled past the declared array width: the caller's
        # array was not wide enough for its contents.
        raise BitWidthError("reduction carry escaped the array width")
    return out


def _route_carry(carry, from_col, carry_hook, schedule):
    if carry_hook is None:
        return carry
    routed = carry_hook(carry, from_col)
    if routed is None:
        schedule.killed_carries += 1
    return routed


def columns_from_rows(rows_with_offsets, width):
    """Spread ``(value, offset)`` integer rows into per-column bit lists.

    Only set bits are materialized (a zero contributes nothing to a
    carry-save sum); this is the reference-layer feeder for
    :func:`reduce_columns`.
    """
    columns = [[] for _ in range(width)]
    for value, offset in rows_with_offsets:
        if value < 0:
            raise BitWidthError("rows must be non-negative encoded patterns")
        b = 0
        v = value
        while v:
            if v & 1:
                pos = offset + b
                if pos >= width:
                    raise BitWidthError(
                        f"row bit at {pos} exceeds array width {width}"
                    )
                columns[pos].append(1)
            v >>= 1
            b += 1
    return columns


def columns_total(columns):
    """Weighted sum of integer-bit columns (for invariant checks)."""
    return sum(sum(col) << i for i, col in enumerate(columns))


def reduce_pp_array(array):
    """Reduce a :class:`~repro.arith.partial_products.PPArray` to two words.

    Reference-layer end-to-end check for the TREE: returns
    ``(sum_word, carry_word, schedule)`` such that adding the two words
    with carries killed at window boundaries reproduces the product.
    """
    from repro.arith.csa import full_adder, half_adder

    width = array.product_width
    rows = []
    for row in array.rows:
        rows.append((row.payload, row.offset))
        if row.carry:
            rows.append((1, row.offset))
    for value, wlo in array.corrections:
        rows.append((value, wlo))
    columns = columns_from_rows(rows, width)

    # Carries are killed at every window boundary, including the top of
    # the array (hardware simply has no column there).
    boundaries = {hi for _, hi in array.windows}

    def carry_hook(item, from_col):
        if from_col + 1 in boundaries:
            return None
        return item

    reduced, schedule = reduce_columns(
        columns, fa=lambda a, b, c: full_adder(a, b, c),
        ha=lambda a, b: half_adder(a, b), carry_hook=carry_hook,
    )
    sum_word = 0
    carry_word = 0
    for i, col in enumerate(reduced):
        if len(col) >= 1:
            sum_word |= col[0] << i
        if len(col) == 2:
            carry_word |= col[1] << i
    return sum_word, carry_word, schedule
