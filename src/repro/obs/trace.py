"""Trace spans in Chrome trace-event format.

:class:`span` wraps an operation — an orchestrator job, a cache probe,
a module build, a compile pass, an event-sim replay — and, when tracing
is on, records one *complete* event (``"ph": "X"``) with microsecond
timestamps.  :func:`write_trace` emits the standard
``{"traceEvents": [...]}`` JSON that loads directly into Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.

Tracing is **off by default** and costs one attribute load per span
while off.  Turn it on with

* ``REPRO_TRACE=/path/to/trace.json`` in the environment — every
  process (and, via fork, every worker) traces itself and the owning
  process writes the file at exit; or
* :func:`start_trace` / :func:`write_trace` programmatically — what
  ``python -m repro.eval.report --trace out.json`` does.

Cross-process collection mirrors the metrics registry: a forked child
clears inherited events on first append (pid guard) and ships its own
buffer back through :func:`repro.obs.task_collect`; the parent calls
:func:`extend_events`.  Events carry the recording pid, so the viewer
separates parent and worker tracks for free.
"""

import atexit
import json
import os
import threading
import time
from typing import Dict, List, Optional

_lock = threading.Lock()
_enabled = False
_events: List[dict] = []
_pid = os.getpid()


def is_tracing():
    """Whether spans are currently being recorded in this process."""
    return _enabled


def start_trace():
    """Enable span collection (clearing any previous buffer)."""
    global _enabled, _pid
    with _lock:
        _events.clear()
        _pid = os.getpid()
        _enabled = True


def stop_trace():
    """Disable span collection, returning the collected events."""
    global _enabled
    with _lock:
        _enabled = False
        events = list(_events)
        _events.clear()
        return events


def _append(event):
    global _pid
    with _lock:
        if not _enabled:
            return
        if os.getpid() != _pid:
            # Forked child: inherited events belong to the parent and
            # must not be re-shipped from here.
            _events.clear()
            _pid = os.getpid()
        _events.append(event)


def complete_event(name, t0_s, dur_s, cat="repro", **args):
    """Record one already-measured complete event (see also :class:`span`)."""
    if not _enabled:
        return
    _append({
        "name": name, "cat": cat, "ph": "X",
        "ts": t0_s * 1e6, "dur": dur_s * 1e6,
        "pid": os.getpid(), "tid": threading.get_native_id(),
        "args": args,
    })


class span:
    """Context manager recording one complete trace event.

    ``args`` become the event's ``args`` payload; the dict handed back
    by ``__enter__`` may be extended inside the body (e.g. to record a
    cache-probe outcome discovered mid-span)::

        with span("job:table3", cat="orchestrator") as s:
            s["mode"] = run_the_job()
    """

    __slots__ = ("name", "cat", "args", "_t0")

    def __init__(self, name, cat="repro", **args):
        self.name = name
        self.cat = cat
        self.args = args
        self._t0 = None

    def __enter__(self):
        if _enabled:
            self._t0 = time.perf_counter()
        return self.args

    def __exit__(self, *exc):
        if self._t0 is not None and _enabled:
            now = time.perf_counter()
            complete_event(self.name, self._t0, now - self._t0,
                           cat=self.cat, **self.args)
        return False


def drain_events():
    """Return and clear this process's event buffer (tracing stays on)."""
    global _pid
    with _lock:
        if os.getpid() != _pid:
            _events.clear()
            _pid = os.getpid()
            return []
        events = list(_events)
        _events.clear()
        return events


def extend_events(events):
    """Append events collected elsewhere (a worker's drained buffer)."""
    if not events:
        return
    with _lock:
        _events.extend(events)


def trace_json(extra_events=None):
    """The Chrome trace-event document for everything collected so far."""
    with _lock:
        events = list(_events)
    if extra_events:
        events = events + list(extra_events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "schema": "chrome-trace"},
    }


def write_trace(path, extra_events=None):
    """Write the trace JSON to ``path``; returns the event count."""
    doc = trace_json(extra_events)
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return len(doc["traceEvents"])


# ----------------------------------------------------------------------
# environment opt-in
# ----------------------------------------------------------------------

_ENV_PATH = os.environ.get("REPRO_TRACE")


def _flush_env_trace():  # pragma: no cover - exercised via subprocess
    try:
        write_trace(_ENV_PATH)
    except OSError:
        pass


if _ENV_PATH:
    start_trace()
    atexit.register(_flush_env_trace)
