"""Trace spans in Chrome trace-event format.

:class:`span` wraps an operation — an orchestrator job, a cache probe,
a module build, a compile pass, an event-sim replay — and, when tracing
is on, records one *complete* event (``"ph": "X"``) with microsecond
timestamps.  :func:`write_trace` emits the standard
``{"traceEvents": [...]}`` JSON that loads directly into Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.

Tracing is **off by default** and costs one attribute load per span
while off.  Turn it on with

* ``REPRO_TRACE=/path/to/trace.json`` in the environment — every
  process (and, via fork, every worker) traces itself and the owning
  process writes the file at exit; or
* :func:`start_trace` / :func:`write_trace` programmatically — what
  ``python -m repro.eval.report --trace out.json`` does.

Cross-process collection mirrors the metrics registry: a forked child
clears inherited events on first append (pid guard) and ships its own
buffer back through :func:`repro.obs.task_collect`; the parent calls
:func:`extend_events`.  Events carry the recording pid, so the viewer
separates parent and worker tracks for free.

**Stitching.**  Every span carries a process-unique ``span`` id and the
id of its ``parent`` — the enclosing span on the same thread, or a
remote parent adopted from a serialized context.  :func:`current_context`
captures ``{"trace", "span"}`` at a submission site (the orchestrator
enqueueing a leaf, a client submitting a transaction);
:func:`adopt_context` installs it on the far side so the worker's spans
resolve to the coordinator's.  :func:`flow_start` / :func:`flow_finish`
draw the Chrome flow arrows (``ph": "s"/"f"``, matched by id+name+cat)
from the submit span into the executing span, so one merged trace shows
coordinator→worker and client→server→lane as connected slices with no
orphan parent ids.
"""

import atexit
import json
import os
import threading
import time
from typing import Dict, List, Optional

_lock = threading.Lock()
_enabled = False
_events: List[dict] = []
_pid = os.getpid()

# -- span identity ------------------------------------------------------
# Ids embed the pid, so they stay unique across forked workers without
# coordination; the per-process counter makes them unique within one.
_id_lock = threading.Lock()
_id_next = 0
_trace_id: Optional[str] = None
_tls = threading.local()


def new_span_id():
    """A process-unique span/flow id (``"<pid-hex>.<seq-hex>"``)."""
    global _id_next
    with _id_lock:
        _id_next += 1
        return f"{os.getpid():x}.{_id_next:x}"


def trace_id():
    """This process's trace id (inherited across fork; adoptable)."""
    global _trace_id
    if _trace_id is None:
        _trace_id = f"t{os.getpid():x}"
    return _trace_id


def _span_stack():
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def current_context():
    """The serializable trace context at this call site, or ``None``.

    ``{"trace": ..., "span": ...}`` names the innermost open span on
    this thread; ship it across a process or queue boundary and install
    it there with :func:`adopt_context`.
    """
    stack = _span_stack()
    if not stack:
        return None
    return {"trace": trace_id(), "span": stack[-1]}


def adopt_context(ctx):
    """Install a remote parent: spans opened on this thread (while no
    local span encloses them) parent to ``ctx["span"]``."""
    global _trace_id
    if not ctx:
        _tls.adopted = None
        return
    if ctx.get("trace"):
        _trace_id = ctx["trace"]
    _tls.adopted = ctx.get("span")


def _current_parent():
    stack = _span_stack()
    if stack:
        return stack[-1]
    return getattr(_tls, "adopted", None)


def is_tracing():
    """Whether spans are currently being recorded in this process."""
    return _enabled


def start_trace():
    """Enable span collection (clearing any previous buffer)."""
    global _enabled, _pid
    with _lock:
        _events.clear()
        _pid = os.getpid()
        _enabled = True


def stop_trace():
    """Disable span collection, returning the collected events."""
    global _enabled
    with _lock:
        _enabled = False
        events = list(_events)
        _events.clear()
        return events


def _append(event):
    global _pid
    with _lock:
        if not _enabled:
            return
        if os.getpid() != _pid:
            # Forked child: inherited events belong to the parent and
            # must not be re-shipped from here.
            _events.clear()
            _pid = os.getpid()
        _events.append(event)


def complete_event(name, t0_s, dur_s, cat="repro", **args):
    """Record one already-measured complete event (see also :class:`span`)."""
    if not _enabled:
        return
    _append({
        "name": name, "cat": cat, "ph": "X",
        "ts": t0_s * 1e6, "dur": dur_s * 1e6,
        "pid": os.getpid(), "tid": threading.get_native_id(),
        "args": args,
    })


class span:
    """Context manager recording one complete trace event.

    ``args`` become the event's ``args`` payload; the dict handed back
    by ``__enter__`` may be extended inside the body (e.g. to record a
    cache-probe outcome discovered mid-span)::

        with span("job:table3", cat="orchestrator") as s:
            s["mode"] = run_the_job()
    """

    __slots__ = ("name", "cat", "args", "_t0", "_id")

    def __init__(self, name, cat="repro", **args):
        self.name = name
        self.cat = cat
        self.args = args
        self._t0 = None
        self._id = None

    def __enter__(self):
        if _enabled:
            self._t0 = time.perf_counter()
            self._id = new_span_id()
            parent = _current_parent()
            self.args["span"] = self._id
            if parent is not None:
                self.args["parent"] = parent
            _span_stack().append(self._id)
        return self.args

    def __exit__(self, *exc):
        if self._id is not None:
            stack = _span_stack()
            if stack and stack[-1] == self._id:
                stack.pop()
        if self._t0 is not None and _enabled:
            now = time.perf_counter()
            complete_event(self.name, self._t0, now - self._t0,
                           cat=self.cat, **self.args)
        return False


def flow_start(name, flow_id, cat="repro"):
    """Open a flow arrow at the submitting site (``ph": "s"``).

    Call inside the span doing the submit so the arrow's tail lands on
    that slice; the matching :func:`flow_finish` (same ``name``,
    ``flow_id`` and ``cat``) lands the head on the executing slice.
    """
    if not _enabled:
        return
    _append({
        "name": name, "cat": cat, "ph": "s", "id": flow_id,
        "ts": time.perf_counter() * 1e6,
        "pid": os.getpid(), "tid": threading.get_native_id(),
    })


def flow_finish(name, flow_id, cat="repro"):
    """Close a flow arrow at the executing site (``ph": "f"``, ``bp:e``)."""
    if not _enabled:
        return
    _append({
        "name": name, "cat": cat, "ph": "f", "bp": "e", "id": flow_id,
        "ts": time.perf_counter() * 1e6,
        "pid": os.getpid(), "tid": threading.get_native_id(),
    })


def drain_events():
    """Return and clear this process's event buffer (tracing stays on)."""
    global _pid
    with _lock:
        if os.getpid() != _pid:
            _events.clear()
            _pid = os.getpid()
            return []
        events = list(_events)
        _events.clear()
        return events


def extend_events(events):
    """Append events collected elsewhere (a worker's drained buffer)."""
    if not events:
        return
    with _lock:
        _events.extend(events)


def trace_json(extra_events=None):
    """The Chrome trace-event document for everything collected so far."""
    with _lock:
        events = list(_events)
    if extra_events:
        events = events + list(extra_events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "schema": "chrome-trace"},
    }


def write_trace(path, extra_events=None):
    """Write the trace JSON to ``path``; returns the event count."""
    doc = trace_json(extra_events)
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return len(doc["traceEvents"])


# ----------------------------------------------------------------------
# environment opt-in
# ----------------------------------------------------------------------

_ENV_PATH = os.environ.get("REPRO_TRACE")


def _flush_env_trace():  # pragma: no cover - exercised via subprocess
    try:
        write_trace(_ENV_PATH)
    except OSError:
        pass


if _ENV_PATH:
    start_trace()
    atexit.register(_flush_env_trace)
