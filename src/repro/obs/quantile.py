"""Streaming quantiles from fixed log-bucket sketches.

The registry's timers and histograms historically carried only
``count/total/min/max`` — enough for means, useless for tail latency.
:class:`QuantileSketch` adds p50/p95/p99 (any quantile, really) for a
few hundred bytes per metric:

* positive samples land in geometric buckets ``[GAMMA**i, GAMMA**(i+1))``
  — with :data:`GAMMA` = 1.05 every estimate is within ~2.5% relative
  error of the true sample;
* zero and negative samples get two dedicated slots (durations are
  occasionally 0.0 on coarse clocks; negatives only ever appear from
  clock steps) so the rank walk stays exact;
* the bucket table is a plain ``{index: count}`` dict of integers, so
  **merging is exact bucket-wise addition** — associative and
  commutative, which is what lets worker snapshots fold into the
  coordinator in any completion order under the ``repro.obs/1`` merge
  rules.

The sketch serializes inside the existing timer/histogram aggregate as
a ``"buckets"`` key (JSON object, string keys); consumers that predate
it simply ignore the extra key, and :func:`quantiles_from_aggregate`
reconstructs quantiles from any snapshot — including one that crossed a
process boundary as JSON.
"""

import math
from typing import Dict, Iterable, Optional

#: Geometric bucket growth factor: relative error <= (GAMMA - 1) / 2.
GAMMA = 1.05

_LOG_GAMMA = math.log(GAMMA)

#: Reserved pseudo-bucket keys (JSON object keys are strings anyway).
_ZERO = "zero"
_NEG = "neg"


def bucket_index(value):
    """The geometric bucket index of a positive sample."""
    return math.floor(math.log(value) / _LOG_GAMMA)


def bucket_value(index):
    """The representative value of bucket ``index`` (geometric middle)."""
    return GAMMA ** (index + 0.5)


class QuantileSketch:
    """Fixed log-bucket quantile sketch (DDSketch-style, unbounded keys).

    Unbounded means "one dict slot per occupied bucket": real metric
    streams (latencies spanning micro- to kilo-seconds) occupy a few
    hundred buckets at most.
    """

    __slots__ = ("buckets", "count")

    def __init__(self):
        self.buckets: Dict[str, int] = {}
        self.count = 0

    def add(self, value):
        """Fold one sample in."""
        if value > 0:
            key = str(math.floor(math.log(value) / _LOG_GAMMA))
        elif value == 0:
            key = _ZERO
        else:
            key = _NEG
        self.buckets[key] = self.buckets.get(key, 0) + 1
        self.count += 1

    def merge(self, other):
        """Exact bucket-wise addition (associative and commutative)."""
        for key, n in other.buckets.items():
            self.buckets[key] = self.buckets.get(key, 0) + n
        self.count += other.count

    def quantile(self, q, lo=None, hi=None):
        """The ``q``-quantile estimate (``0 <= q <= 1``), or ``None``.

        ``lo``/``hi`` clamp the estimate into the exact observed range
        (the aggregate's min/max) so p0/p100 stay honest.
        """
        if self.count <= 0:
            return None
        rank = q * (self.count - 1)
        seen = self.buckets.get(_NEG, 0)
        if rank < seen:
            return lo if lo is not None else float("-inf")
        seen += self.buckets.get(_ZERO, 0)
        if rank < seen:
            return 0.0
        estimate = None
        for index in sorted(int(k) for k in self.buckets
                            if k not in (_ZERO, _NEG)):
            seen += self.buckets[str(index)]
            if rank < seen:
                estimate = bucket_value(index)
                break
        if estimate is None:                 # numeric edge: rank == count-1
            top = max((int(k) for k in self.buckets
                       if k not in (_ZERO, _NEG)), default=None)
            estimate = bucket_value(top) if top is not None else 0.0
        if lo is not None:
            estimate = max(estimate, lo)
        if hi is not None:
            estimate = min(estimate, hi)
        return estimate

    # -- (de)serialization ---------------------------------------------

    def to_dict(self):
        """The JSON form stored under the aggregate's ``"buckets"`` key."""
        return dict(self.buckets)

    @classmethod
    def from_dict(cls, buckets):
        sketch = cls()
        if buckets:
            sketch.buckets = {str(k): int(n) for k, n in buckets.items()}
            sketch.count = sum(sketch.buckets.values())
        return sketch

    @classmethod
    def from_aggregate(cls, agg):
        """Rebuild from a snapshot timer/histogram aggregate dict."""
        return cls.from_dict((agg or {}).get("buckets"))


def merge_bucket_dicts(mine, theirs):
    """Fold bucket table ``theirs`` into ``mine`` in place (both JSON dicts)."""
    for key, n in (theirs or {}).items():
        mine[key] = mine.get(key, 0) + n
    return mine


def diff_bucket_dicts(after, before):
    """Bucket table of the samples in ``after`` but not ``before``.

    Registries are process-cumulative; callers that want the quantiles
    of one scoped run (one load burst, one campaign) diff the bucket
    tables around it.  Exact because counts only ever grow.
    """
    out = {}
    before = before or {}
    for key, n in (after or {}).items():
        delta = n - before.get(key, 0)
        if delta > 0:
            out[key] = delta
    return out


def quantiles_from_aggregate(agg, qs=(0.5, 0.95, 0.99)) -> Optional[dict]:
    """``{"p50": ..., "p95": ...}`` from a snapshot aggregate, or ``None``.

    Works on any ``repro.obs/1`` timer/histogram aggregate that carries
    a ``"buckets"`` table — including one parsed back from JSON on the
    other side of a process or HTTP boundary.
    """
    if not agg or not agg.get("buckets"):
        return None
    sketch = QuantileSketch.from_aggregate(agg)
    lo, hi = agg.get("min"), agg.get("max")
    return {_qlabel(q): sketch.quantile(q, lo=lo, hi=hi) for q in qs}


def _qlabel(q):
    text = f"{q * 100:g}"
    return f"p{text.replace('.', '_')}"


def quantile_labels(qs: Iterable[float]):
    """The ``pNN`` labels :func:`quantiles_from_aggregate` uses."""
    return [_qlabel(q) for q in qs]
