"""Background gauge sampler: time-series ring buffers of live state.

The metrics registry answers "how much, in total"; the sampler answers
"what does it look like *right now*, and over the last minute".  A
:class:`TimeSeriesSampler` owns a set of named **sources** — zero-arg
callables returning a number (or ``None`` to skip a tick) — and a
daemon thread that samples every source on a fixed interval into a
bounded ring buffer per series.  Typical sources: per-lane serve queue
depths, dispatcher in-flight words, orchestrator in-flight leaves,
cache hit rate, mean word occupancy.

Each tick also mirrors the latest value into the registry as a gauge
(``<series>`` verbatim), so the Prometheus ``/metrics`` endpoint
exposes the current value of every sampled series for free while
``/series.json`` serves the full ring buffers.

Sampling is polite by construction: a failing source is dropped into
the ``sampler.errors`` counter rather than killing the thread, and the
ring buffers bound memory at ``capacity`` points per series.  The
sampler is opt-in — nothing starts it implicitly — and
:meth:`sample_once` gives tests a deterministic single tick without a
thread.
"""

import threading
import time
from collections import deque
from typing import Callable, Dict, Optional

#: Serialized ring-buffer schema identifier.
SERIES_SCHEMA = "repro.obs.series/1"

#: Default points kept per series (at 0.5 s that is two minutes).
DEFAULT_CAPACITY = 240


class TimeSeriesSampler:
    """Samples named gauge sources into bounded ring buffers."""

    def __init__(self, interval_s=0.5, capacity=DEFAULT_CAPACITY,
                 registry=None):
        if registry is None:
            from repro.obs.metrics import registry as _registry

            registry = _registry()
        self.interval_s = float(interval_s)
        self.capacity = int(capacity)
        self._registry = registry
        self._lock = threading.Lock()
        self._sources: Dict[str, Callable[[], Optional[float]]] = {}
        self._series: Dict[str, deque] = {}
        self._stop = threading.Event()
        self._thread = None

    # -- sources --------------------------------------------------------

    def add_source(self, name, fn):
        """Register source ``name``; replaces an existing source."""
        with self._lock:
            self._sources[name] = fn
            self._series.setdefault(name, deque(maxlen=self.capacity))
        return self

    def remove_source(self, name):
        with self._lock:
            self._sources.pop(name, None)

    @property
    def sources(self):
        with self._lock:
            return tuple(self._sources)

    # -- sampling -------------------------------------------------------

    def sample_once(self, now=None):
        """Take one sample of every source (what the thread does per tick)."""
        now = time.time() if now is None else now
        with self._lock:
            items = list(self._sources.items())
        for name, fn in items:
            try:
                value = fn()
            except Exception:
                self._registry.inc("sampler.errors")
                continue
            if value is None:
                continue
            value = float(value)
            with self._lock:
                self._series[name].append((round(now, 3), value))
            self._registry.gauge(name, value)
        self._registry.inc("sampler.ticks")

    def _loop(self):
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    # -- lifecycle ------------------------------------------------------

    @property
    def running(self):
        return self._thread is not None and self._thread.is_alive()

    def start(self):
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-obs-sampler",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()

    # -- snapshot -------------------------------------------------------

    def series(self):
        """JSON-ready ring buffers: ``{schema, interval_s, series}``."""
        with self._lock:
            return {
                "schema": SERIES_SCHEMA,
                "interval_s": self.interval_s,
                "capacity": self.capacity,
                "series": {name: [[t, v] for t, v in points]
                           for name, points in sorted(self._series.items())},
            }


#: Process-wide sampler: shared by the serve and orchestrator telemetry
#: opt-ins so one HTTP endpoint sees every registered series.
_SAMPLER = None
_SAMPLER_LOCK = threading.Lock()


def sampler():
    """The process-wide :class:`TimeSeriesSampler` (created lazily, not
    started — callers opt in with ``start()``)."""
    global _SAMPLER
    with _SAMPLER_LOCK:
        if _SAMPLER is None:
            _SAMPLER = TimeSeriesSampler()
        return _SAMPLER
