"""Unified observability: metrics registry, trace spans, stat schemas.

Everything quantitative the stack reports flows through this package:

* :func:`registry` — the process-wide :class:`~repro.obs.metrics.MetricsRegistry`
  (counters / gauges / timers / histograms / record streams) with
  JSON snapshot and cross-process merge;
* :class:`span` — Chrome trace-event spans (Perfetto-loadable), enabled
  by ``REPRO_TRACE=<path>`` or :func:`start_trace`;
* :mod:`repro.obs.schema` — the enforced ``sim_stats`` key schema both
  power engines emit.

Worker-process protocol (what the orchestrator and the Monte Carlo
shards use): the child calls :func:`task_begin` before its work and
returns :func:`task_collect`'s payload with its result; the parent
folds it in with :func:`task_merge`.  Combined with the registries'
pid guards, child metrics merge exactly once — never double-counted,
never lost.

See docs/observability.md for naming conventions and the trace-viewing
howto.
"""

from repro.obs.http import TelemetryServer, prometheus_exposition
from repro.obs.metrics import MetricsRegistry, registry
from repro.obs.quantile import (
    QuantileSketch,
    diff_bucket_dicts,
    merge_bucket_dicts,
    quantiles_from_aggregate,
)
from repro.obs.sampler import TimeSeriesSampler, sampler
from repro.obs.schema import (
    SIM_STATS_DEFAULTS,
    SIM_STATS_KEYS,
    assert_sim_stats_schema,
    normalize_sim_stats,
)
from repro.obs.trace import (
    adopt_context,
    complete_event,
    current_context,
    drain_events,
    extend_events,
    flow_finish,
    flow_start,
    is_tracing,
    new_span_id,
    span,
    start_trace,
    stop_trace,
    trace_id,
    trace_json,
    write_trace,
)

__all__ = [
    "MetricsRegistry", "registry",
    "TelemetryServer", "prometheus_exposition",
    "QuantileSketch", "diff_bucket_dicts", "merge_bucket_dicts",
    "quantiles_from_aggregate",
    "TimeSeriesSampler", "sampler",
    "SIM_STATS_DEFAULTS", "SIM_STATS_KEYS",
    "assert_sim_stats_schema", "normalize_sim_stats",
    "adopt_context", "complete_event", "current_context",
    "drain_events", "extend_events", "flow_finish", "flow_start",
    "is_tracing", "new_span_id",
    "span", "start_trace", "stop_trace", "trace_id", "trace_json",
    "write_trace",
    "task_begin", "task_collect", "task_merge",
]


def task_begin():
    """Start a clean observability scope in a worker task.

    Resets this process's registry and trace buffer so the payload
    returned by :func:`task_collect` covers exactly this task — pool
    workers are reused across tasks, and forked children start life
    with a copy of the parent's state.
    """
    registry().reset()
    drain_events()


def task_collect():
    """The worker's observability payload to ship back with its result."""
    return {"metrics": registry().snapshot(), "trace": drain_events()}


def task_merge(payload):
    """Fold a worker's :func:`task_collect` payload into this process."""
    if not payload:
        return
    registry().merge(payload["metrics"])
    extend_events(payload.get("trace") or ())
