"""Stable schemas for the metric payloads crossing module boundaries.

The one contract enforced today is the simulator-stats dict
(``PowerReport.sim_stats``): both power engines — the glitch-aware
event replay and the zero-delay fallback — must emit the *same* key
set, so downstream consumers (the metrics registry, ``--metrics-json``,
the report tables) never branch on engine identity.
"""

from typing import Dict

#: Every key a ``PowerReport.sim_stats`` dict carries, with the value
#: used when an engine has nothing to report for it.
SIM_STATS_DEFAULTS: Dict[str, object] = {
    "engine": "unknown",          # "wheel" | "heap" | "zero-delay"
    "kernel": "none",             # "c" | "python" | "none"
    "workers": 1,
    "transitions": 0,
    "events_processed": 0,
    "cancellations": 0,
    "wheel_buckets": 0,
    "wheel_max_bucket": 0,
    "elapsed_s": 0.0,
    "transitions_per_s": 0.0,
}

SIM_STATS_KEYS = frozenset(SIM_STATS_DEFAULTS)


def normalize_sim_stats(stats):
    """Return ``stats`` with every schema key present.

    Missing keys take their defaults; ``transitions_per_s`` is derived
    from ``transitions``/``elapsed_s`` when absent.  Unknown keys are a
    programming error (a renamed counter would otherwise fork the
    schema silently) and raise :class:`ValueError`.
    """
    unknown = set(stats) - SIM_STATS_KEYS
    if unknown:
        raise ValueError(
            f"unknown sim_stats keys {sorted(unknown)}; "
            f"extend repro.obs.schema.SIM_STATS_DEFAULTS first")
    out = dict(SIM_STATS_DEFAULTS)
    out.update(stats)
    if not out["transitions_per_s"] and out["elapsed_s"] > 0:
        out["transitions_per_s"] = out["transitions"] / out["elapsed_s"]
    return out


def assert_sim_stats_schema(stats):
    """Raise :class:`ValueError` unless ``stats`` matches the schema exactly."""
    if stats is None:
        raise ValueError("sim_stats is None")
    missing = SIM_STATS_KEYS - set(stats)
    extra = set(stats) - SIM_STATS_KEYS
    if missing or extra:
        raise ValueError(
            f"sim_stats schema mismatch: missing {sorted(missing)}, "
            f"unexpected {sorted(extra)}")
    return True
