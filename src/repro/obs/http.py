"""Stdlib-only HTTP telemetry endpoint.

:class:`TelemetryServer` wraps a :class:`http.server.ThreadingHTTPServer`
in a daemon thread and serves the process's live observability state:

``/metrics``
    Prometheus text exposition (version 0.0.4) of the registry —
    counters as ``repro_<name>_total``, gauges as gauges, timers and
    histograms as summaries with ``{quantile="0.5|0.95|0.99"}`` rows
    computed from the log-bucket sketches plus ``_count``/``_sum``.
``/metrics.json``
    The raw ``repro.obs/1`` registry snapshot.
``/series.json``
    The background sampler's ring buffers (``repro.obs.series/1``).
``/healthz``
    JSON verdict from the registered health checks; HTTP 200 when every
    check passes, 503 otherwise.

The server binds ``port=0`` by default (ephemeral — read ``.port`` after
``start()``), never writes, and holds no locks across request handling
beyond the registry's own snapshot lock, so scraping a busy server is
safe.  Both ``serve.Server`` (``telemetry_port=``) and the report CLI
(``--telemetry-port``) opt in through this class; they share the
process-wide registry and sampler, so one endpoint sees everything.
"""

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from repro.obs.metrics import registry as _registry
from repro.obs.quantile import quantiles_from_aggregate
from repro.obs.sampler import sampler as _sampler

#: Quantiles exposed per summary metric.
EXPOSITION_QUANTILES = (0.5, 0.95, 0.99)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name, suffix=""):
    """Sanitize a dotted registry name into a Prometheus metric name."""
    return "repro_" + _NAME_RE.sub("_", name) + suffix


def _fmt(value):
    if value != value:                       # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_exposition(snapshot):
    """Render a ``repro.obs/1`` snapshot as Prometheus text exposition."""
    lines = []
    for name, value in snapshot.get("counters", {}).items():
        metric = metric_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    for key in ("timers", "histograms"):
        for name, agg in snapshot.get(key, {}).items():
            metric = metric_name(name)
            lines.append(f"# TYPE {metric} summary")
            estimates = quantiles_from_aggregate(agg, EXPOSITION_QUANTILES)
            if estimates:
                for q, est in zip(EXPOSITION_QUANTILES, estimates.values()):
                    lines.append(
                        f'{metric}{{quantile="{q:g}"}} {_fmt(est)}')
            lines.append(f"{metric}_count {_fmt(agg['count'])}")
            lines.append(f"{metric}_sum {_fmt(agg['total'])}")
    return "\n".join(lines) + "\n"


class TelemetryServer:
    """Daemon-thread HTTP server exposing metrics, series and health."""

    def __init__(self, port=0, host="127.0.0.1", registry=None,
                 sampler=None):
        self._registry = registry if registry is not None else _registry()
        self._sampler = sampler if sampler is not None else _sampler()
        self._checks: Dict[str, Callable[[], dict]] = {}
        self._checks_lock = threading.Lock()
        self._thread = None

        telemetry = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, *a):     # keep scrapes off stderr
                pass

            def do_GET(self):
                telemetry._handle(self)

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True

    # -- health checks --------------------------------------------------

    def add_health_check(self, name, fn):
        """Register check ``name``: a zero-arg callable returning a dict
        with at least ``{"ok": bool}`` (extra keys pass through)."""
        with self._checks_lock:
            self._checks[name] = fn
        return self

    def health(self):
        """Run every check: ``{"ok": all_ok, "checks": {...}}``."""
        results = {}
        with self._checks_lock:
            checks = list(self._checks.items())
        for name, fn in checks:
            try:
                verdict = dict(fn())
                verdict.setdefault("ok", False)
            except Exception as exc:
                verdict = {"ok": False, "error": repr(exc)}
            results[name] = verdict
        return {"ok": all(v.get("ok") for v in results.values()),
                "checks": results}

    # -- request handling -----------------------------------------------

    def _handle(self, handler):
        path = handler.path.split("?", 1)[0]
        if path == "/metrics":
            body = prometheus_exposition(self._registry.snapshot())
            self._respond(handler, 200, body,
                          "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/metrics.json":
            self._respond_json(handler, 200, self._registry.snapshot())
        elif path == "/series.json":
            self._respond_json(handler, 200, self._sampler.series())
        elif path == "/healthz":
            verdict = self.health()
            self._respond_json(handler, 200 if verdict["ok"] else 503,
                               verdict)
        else:
            self._respond(handler, 404, "not found\n", "text/plain")
        self._registry.inc("telemetry.requests")

    @staticmethod
    def _respond(handler, status, body, content_type):
        data = body.encode("utf-8")
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(data)))
        handler.end_headers()
        handler.wfile.write(data)

    @classmethod
    def _respond_json(cls, handler, status, payload):
        cls._respond(handler, status, json.dumps(payload) + "\n",
                     "application/json")

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self):
        return self._httpd.server_address[1]

    @property
    def url(self):
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def running(self):
        return self._thread is not None and self._thread.is_alive()

    def start(self):
        if self.running:
            return self
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        kwargs={"poll_interval": 0.1},
                                        name="repro-obs-telemetry",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self):
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()
