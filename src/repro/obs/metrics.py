"""Process-wide metrics registry: counters, gauges, timers, records.

One :class:`MetricsRegistry` per process (module-level singleton,
:func:`registry`) collects every quantitative observation the stack
makes — orchestrator cache hits, simulator transition counts, per-job
wall clocks — under short dotted names.  The registry is deliberately
small and dependency-free:

* **thread-safe** — one lock around every mutation;
* **fork-safe** — the registry remembers the pid it was created in and
  silently resets on first touch in a forked child, so a worker never
  re-reports counts inherited from its parent (the parent merges the
  child's *own* snapshot back explicitly, see :func:`MetricsRegistry.merge`);
* **JSON-stable** — :meth:`MetricsRegistry.snapshot` returns one plain
  dict (schema ``repro.obs/1``) that serializes as-is and that
  :meth:`MetricsRegistry.merge` consumes on the other side of a process
  boundary: counters add, gauges last-write-wins, timers/histograms
  combine count/total/min/max plus their log-bucket quantile sketches
  (exact bucket-wise addition — see :mod:`repro.obs.quantile`),
  records append.

Instrument sites at *operation* granularity (a replay window, a cache
probe, a job) — never per event; the registry is for observability, not
profiling.  ``REPRO_NO_OBS=1`` (or :meth:`set_enabled`) turns every
mutation into a no-op for overhead-paranoid runs.
"""

import math
import os
import threading
import time
from typing import Dict, List, Optional

from repro.obs.quantile import (
    _LOG_GAMMA,
    merge_bucket_dicts,
    quantiles_from_aggregate,
)

#: Snapshot schema identifier; bump when the shape changes.
SCHEMA = "repro.obs/1"

#: Rows kept per record stream; overflow is counted, never silent.
MAX_RECORDS_PER_NAME = 4096


class MetricsRegistry:
    """Thread- and fork-safe store of named metrics."""

    def __init__(self, enabled=None):
        if enabled is None:
            enabled = not os.environ.get("REPRO_NO_OBS", "")
        self._enabled = enabled
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, Dict[str, float]] = {}
        self._histograms: Dict[str, Dict[str, float]] = {}
        self._records: Dict[str, List[dict]] = {}
        self._meta: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def enabled(self):
        return self._enabled

    def set_enabled(self, enabled):
        """Toggle collection (used by the overhead benchmark)."""
        self._enabled = bool(enabled)

    def _clear_locked(self):
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
        self._histograms.clear()
        self._records.clear()
        self._meta.clear()
        self._pid = os.getpid()

    def reset(self):
        """Drop every metric (and adopt the current pid)."""
        with self._lock:
            self._clear_locked()

    def _guard(self):
        """Fork guard: a forked child must not re-report parent metrics."""
        if os.getpid() != self._pid:
            self._clear_locked()

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------

    def inc(self, name, n=1):
        """Add ``n`` to counter ``name`` (monotone; merges by addition)."""
        if not self._enabled:
            return
        with self._lock:
            self._guard()
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name, value):
        """Set gauge ``name`` (point-in-time; merges last-write-wins)."""
        if not self._enabled:
            return
        with self._lock:
            self._guard()
            self._gauges[name] = value

    def observe(self, name, seconds):
        """Record one duration under timer ``name``."""
        if not self._enabled:
            return
        with self._lock:
            self._guard()
            _combine(self._timers, name, seconds)

    def observe_value(self, name, value):
        """Record one sample under histogram ``name``."""
        if not self._enabled:
            return
        with self._lock:
            self._guard()
            _combine(self._histograms, name, value)

    def observe_values(self, name, values):
        """Record many samples under histogram ``name`` in one lock trip.

        Semantically identical to one :meth:`observe_value` call per
        element; the bulk form is what per-transaction hot paths use —
        a wide serve batch lands hundreds of latency samples, and
        paying the lock/lookup once per batch instead of once per
        sample keeps the instrumentation tax width-independent.
        """
        if not self._enabled or not values:
            return
        with self._lock:
            self._guard()
            _combine_many(self._histograms, name, values)

    def timer(self, name):
        """Context manager timing its body into :meth:`observe`."""
        return _Timer(self, name)

    # ------------------------------------------------------------------
    # read-side accessors (telemetry endpoints, samplers, CLIs)
    # ------------------------------------------------------------------

    def counter_value(self, name, default=0):
        """Current value of counter ``name`` (no mutation)."""
        with self._lock:
            self._guard()
            return self._counters.get(name, default)

    def gauge_value(self, name, default=None):
        """Current value of gauge ``name`` (no mutation)."""
        with self._lock:
            self._guard()
            return self._gauges.get(name, default)

    def aggregate(self, name):
        """A copy of the timer or histogram aggregate ``name``, or None."""
        with self._lock:
            self._guard()
            agg = self._timers.get(name) or self._histograms.get(name)
            if agg is None:
                return None
            out = dict(agg)
            out["buckets"] = dict(agg.get("buckets", ()))
            return out

    def quantiles(self, name, qs=(0.5, 0.95, 0.99)):
        """Streaming quantile estimates of timer/histogram ``name``.

        Returns ``{"p50": ..., "p95": ..., "p99": ...}`` (labels follow
        ``qs``) or ``None`` when the metric has no samples yet.
        """
        return quantiles_from_aggregate(self.aggregate(name), qs)

    def record(self, name, row):
        """Append a structured row (a JSON-safe dict) to stream ``name``.

        Streams are bounded at :data:`MAX_RECORDS_PER_NAME` rows;
        overflow increments the ``<name>.dropped`` counter instead of
        growing without limit or vanishing silently.
        """
        if not self._enabled:
            return
        with self._lock:
            self._guard()
            rows = self._records.setdefault(name, [])
            if len(rows) >= MAX_RECORDS_PER_NAME:
                self._counters[f"{name}.dropped"] = \
                    self._counters.get(f"{name}.dropped", 0) + 1
                return
            rows.append(dict(row))

    def annotate(self, name, value):
        """Attach a string annotation (paths, versions) to the snapshot."""
        if not self._enabled:
            return
        with self._lock:
            self._guard()
            self._meta[name] = str(value)

    # ------------------------------------------------------------------
    # snapshot / merge
    # ------------------------------------------------------------------

    def snapshot(self):
        """One JSON-serializable dict of everything collected so far."""
        with self._lock:
            self._guard()
            return {
                "schema": SCHEMA,
                "pid": self._pid,
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "timers": {k: _copy_aggregate(v)
                           for k, v in sorted(self._timers.items())},
                "histograms": {k: _copy_aggregate(v)
                               for k, v in sorted(self._histograms.items())},
                "records": {k: [dict(r) for r in v]
                            for k, v in sorted(self._records.items())},
                "meta": dict(sorted(self._meta.items())),
            }

    def merge(self, snapshot):
        """Fold a child process's :meth:`snapshot` into this registry.

        Counters add, gauges and meta take the child's value, timers
        and histograms combine their count/total/min/max, records
        append (subject to the same cap as :meth:`record`).
        """
        if not snapshot or snapshot.get("schema") != SCHEMA:
            raise ValueError(
                f"cannot merge metrics snapshot with schema "
                f"{snapshot.get('schema') if snapshot else None!r}; "
                f"expected {SCHEMA!r}")
        with self._lock:
            self._guard()
            for name, n in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + n
            self._gauges.update(snapshot.get("gauges", {}))
            self._meta.update(snapshot.get("meta", {}))
            for store, key in ((self._timers, "timers"),
                               (self._histograms, "histograms")):
                for name, agg in snapshot.get(key, {}).items():
                    mine = store.get(name)
                    if mine is None:
                        mine = store[name] = dict(agg)
                        mine["buckets"] = dict(agg.get("buckets", ()))
                    else:
                        mine["count"] += agg["count"]
                        mine["total"] += agg["total"]
                        mine["min"] = min(mine["min"], agg["min"])
                        mine["max"] = max(mine["max"], agg["max"])
                        merge_bucket_dicts(mine.setdefault("buckets", {}),
                                           agg.get("buckets"))
            for name, rows in snapshot.get("records", {}).items():
                mine = self._records.setdefault(name, [])
                for row in rows:
                    if len(mine) >= MAX_RECORDS_PER_NAME:
                        self._counters[f"{name}.dropped"] = \
                            self._counters.get(f"{name}.dropped", 0) + 1
                    else:
                        mine.append(dict(row))


def _combine(store, name, value):
    # Inlined sketch bucketing (one math.log) keeps the hot path at a
    # single function call per observation.
    if value > 0:
        bucket = str(math.floor(math.log(value) / _LOG_GAMMA))
    elif value == 0:
        bucket = "zero"
    else:
        bucket = "neg"
    agg = store.get(name)
    if agg is None:
        store[name] = {"count": 1, "total": value, "min": value,
                       "max": value, "buckets": {bucket: 1}}
    else:
        agg["count"] += 1
        agg["total"] += value
        if value < agg["min"]:
            agg["min"] = value
        if value > agg["max"]:
            agg["max"] = value
        buckets = agg["buckets"]
        buckets[bucket] = buckets.get(bucket, 0) + 1


def _combine_many(store, name, values):
    # Bulk _combine: one aggregate lookup, then a tight loop.  Bucket
    # math matches _combine exactly so merged snapshots cannot tell
    # the two entry points apart.
    agg = store.get(name)
    if agg is None:
        first = values[0]
        agg = store[name] = {"count": 0, "total": 0, "min": first,
                             "max": first, "buckets": {}}
    buckets = agg["buckets"]
    total = agg["total"]
    lo = agg["min"]
    hi = agg["max"]
    for value in values:
        if value > 0:
            bucket = str(math.floor(math.log(value) / _LOG_GAMMA))
        elif value == 0:
            bucket = "zero"
        else:
            bucket = "neg"
        buckets[bucket] = buckets.get(bucket, 0) + 1
        total += value
        if value < lo:
            lo = value
        elif value > hi:
            hi = value
    agg["count"] += len(values)
    agg["total"] = total
    agg["min"] = lo
    agg["max"] = hi


def _copy_aggregate(agg):
    out = dict(agg)
    out["buckets"] = dict(agg.get("buckets", ()))
    return out


class _Timer:
    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry, name):
        self._registry = registry
        self._name = name
        self._t0 = None

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._registry.observe(self._name,
                               time.perf_counter() - self._t0)
        return False


#: The process-wide registry every instrumented site reports to.
_REGISTRY = MetricsRegistry()


def registry():
    """The process-wide :class:`MetricsRegistry` singleton."""
    return _REGISTRY
