"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class BitWidthError(ReproError, ValueError):
    """A value does not fit in, or a width is invalid for, a bit field."""


class FormatError(ReproError, ValueError):
    """An operand does not conform to the selected floating-point format."""


class NetlistError(ReproError):
    """A structural netlist is malformed (dangling nets, double drivers...)."""


class SimulationError(ReproError):
    """A simulation could not be carried out (uninitialized inputs, ...)."""


class PipelineError(ReproError):
    """A pipeline partition is inconsistent with the underlying netlist."""


class QueueFullError(ReproError):
    """A bounded service queue rejected a transaction (backpressure).

    Raised by non-blocking submits against a full lane, and by blocking
    submits whose wait timed out before capacity freed up.
    """


class UnsupportedOperationError(ReproError):
    """The requested operation is outside the unit's supported behaviour.

    The paper's unit deliberately omits some IEEE-754 features (subnormal
    operands, sticky-based tie handling); in "paper mode" those raise this
    error instead of silently producing a wrong result.
    """
