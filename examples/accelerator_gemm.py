"""Quantized GEMM on a multi-lane MFmult accelerator.

Run:  python examples/accelerator_gemm.py

Models the paper's target system — an accelerator issuing several
multiplications per cycle — doing what such accelerators actually do:
matrix multiplication with quantized weights.  Weights are int8-scaled
(exactly representable in binary32, so Algorithm 1 demotes them);
activations are either quantized (demotable) or full-precision fp64.

The study compares the demoting accelerator against an all-binary64
machine on lane-cycles, wall-cycles and energy, and reports the actual
numerical error introduced.
"""

import random

from repro.core.accelerator import Accelerator
from repro.core.vector_unit import FormatPowerTable


def make_matrices(n, rng, quantized_activations):
    weights = [[(rng.randint(-127, 127) or 1) / 128.0 for __ in range(n)]
               for __ in range(n)]
    if quantized_activations:
        acts = [[(1 + rng.getrandbits(16) / 65536.0)
                 * 2.0 ** rng.randint(-4, 4) for __ in range(n)]
                for __ in range(n)]
    else:
        acts = [[rng.uniform(0.01, 16.0) for __ in range(n)]
                for __ in range(n)]
    return weights, acts


def reference_gemm(a, b):
    n = len(a)
    return [[sum(a[i][k] * b[k][j] for k in range(n)) for j in range(n)]
            for i in range(n)]


def worst_relative_error(c, ref):
    worst = 0.0
    for row_c, row_r in zip(c, ref):
        for got, want in zip(row_c, row_r):
            if want:
                worst = max(worst, abs(got - want) / abs(want))
    return worst


def main():
    rng = random.Random(2017)
    n = 10
    table = FormatPowerTable()

    print(f"{n}x{n} GEMM, int8-quantized weights, 8 lanes\n")
    header = (f"{'activations':<22} {'demoted':>9} {'lane-cyc':>9} "
              f"{'wall-cyc':>9} {'energy pJ':>10} {'saved':>7} "
              f"{'worst rel err':>14}")
    print(header)
    print("-" * len(header))

    for label, quantized in (("quantized (binary32)", True),
                             ("full-precision fp64", False)):
        a, b = make_matrices(n, rng, quantized)
        ref = reference_gemm(a, b)

        acc = Accelerator(lanes=8, use_reduction=True, power_table=table)
        c, report = acc.gemm(a, b)
        energy = acc.compare_energy(report)
        err = worst_relative_error(c, ref)
        print(f"{label:<22} {report.stats.demoted_operations:>5}/"
              f"{report.stats.total_operations:<4}"
              f"{report.lane_cycles:>8} {report.wall_cycles:>9} "
              f"{energy['energy_pj']:>10.0f} {energy['savings']:>6.1%} "
              f"{err:>14.2e}")

    print("\nQuantized activations let the reducer demote every product "
          "onto the dual\nbinary32 lanes — half the cycles and about a "
          "third of the energy of the same\nGEMM on the binary64 path. "
          "Here the demotion is even error-free: the\nquantized "
          "mantissas' products fit binary32 exactly, which is precisely "
          "the\ncase Algorithm 1 was designed to catch.")


if __name__ == "__main__":
    main()
