"""Quickstart: multiply numbers in all three formats, both layers.

Run:  python examples/quickstart.py

Shows the three operating formats of the multi-format multiplier
(Sec. III) on the *functional* model, then replays the same operations
through the *gate-level* 3-stage pipelined netlist (Fig. 5) and checks
they agree bit for bit.
"""

from repro import MFFormat, MFMult, OperandBundle
from repro.bits.ieee754 import BINARY32, BINARY64, decode, encode
from repro.core.pipeline_unit import MFMultUnit


def main():
    mf = MFMult()        # paper mode: the silicon's exact behaviour

    print("== int64: 64x64 -> 128-bit unsigned product ==")
    x, y = 0xDEADBEEFCAFEBABE, 0x123456789ABCDEF1
    product = mf.mul_int64(x, y)
    print(f"  {x:#x} * {y:#x}")
    print(f"  = {product:#x}")
    assert product == x * y

    print("\n== binary64: one double-precision product per cycle ==")
    a, b = 1.5, 2.5
    print(f"  {a} * {b} = {mf.mul_fp64(a, b)}")
    print(f"  pi-ish: {mf.mul_fp64(3.141592653589793, 2.718281828459045)}")

    print("\n== dual binary32: two single-precision products per cycle ==")
    (r0, r1) = mf.mul_fp32_pair((1.5, 100.0), (2.0, 0.25))
    print(f"  lane 0: 1.5 * 2.0   = {r0}")
    print(f"  lane 1: 100.0 * 0.25 = {r1}")

    print("\n== same operations through the gate-level pipeline ==")
    unit = MFMultUnit()          # builds the ~25k-gate netlist of Fig. 5
    stats = unit.module.stats()
    print(f"  netlist: {stats['gates']} gates, {stats['registers']} "
          f"flip-flops, 3 stages")
    ops = [
        (OperandBundle.int64(x, y), MFFormat.INT64),
        (OperandBundle.fp64(encode(a, BINARY64), encode(b, BINARY64)),
         MFFormat.FP64),
        (OperandBundle.fp32_pair(
            encode(1.5, BINARY32), encode(2.0, BINARY32),
            encode(100.0, BINARY32), encode(0.25, BINARY32)),
         MFFormat.FP32X2),
    ]
    results = unit.run_batch(ops)
    assert (results[0].ph << 64) | results[0].pl == x * y
    assert decode(results[1].ph, BINARY64) == mf.mul_fp64(a, b)
    assert decode(results[2].ph & 0xFFFFFFFF, BINARY32) == r0
    assert decode(results[2].ph >> 32, BINARY32) == r1
    print("  gate-level results match the functional model exactly.")


if __name__ == "__main__":
    main()
