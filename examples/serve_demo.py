"""Multiplier-as-a-service: concurrent clients share full words.

Run:  python examples/serve_demo.py

Four threaded clients and one asyncio client hammer a single
:class:`repro.serve.Server` with mixed-format transactions.  None of
them coordinates with the others — the server coalesces whatever is in
flight into full 64-pattern simulation words, so every caller pays
roughly 1/64th of a netlist evaluation per multiply.  The demo prints
the per-lane batch occupancy the sharing achieved and verifies every
result bit-for-bit against the unbatched reference path.
"""

import asyncio
import threading

from repro import obs
from repro.serve import AsyncClient, Server, reference_result
from repro.serve.loadgen import TrafficGenerator

N_CLIENTS = 4
TXS_PER_CLIENT = 96


def threaded_client(server, seed, failures):
    """One independent caller: submit a seeded stream, verify results."""
    traffic = TrafficGenerator(seed=seed, specials=0.05)
    txs = [traffic.next_transaction() for _ in range(TXS_PER_CLIENT)]
    tickets = [server.submit(tx) for tx in txs]
    for tx, ticket in zip(txs, tickets):
        if ticket.result(timeout=60.0) != reference_result(tx):
            failures.append(tx)


async def async_client(server, seed):
    traffic = TrafficGenerator(seed=seed, specials=0.05)
    txs = [traffic.next_transaction() for _ in range(TXS_PER_CLIENT)]
    results = await AsyncClient(server).gather(txs)
    for tx, got in zip(txs, results):
        assert got == reference_result(tx), tx
    return len(results)


def main():
    reg = obs.registry()
    before = reg.snapshot()

    with Server(max_batch=64, max_wait=0.02) as server:
        failures = []
        threads = [
            threading.Thread(target=threaded_client,
                             args=(server, 100 + i, failures))
            for i in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        n_async = asyncio.run(async_client(server, 999))
        for t in threads:
            t.join()
        server.drain()

    assert not failures, f"{len(failures)} results diverged"
    total = N_CLIENTS * TXS_PER_CLIENT + n_async

    snap = reg.snapshot()

    def delta(table, name, field=None):
        now = snap[table].get(name, {} if field else 0)
        then = before[table].get(name, {} if field else 0)
        if field is None:
            return now - then
        return now.get(field, 0) - then.get(field, 0)

    print(f"{N_CLIENTS} threaded + 1 asyncio client, "
          f"{total} mixed-format transactions, all bit-identical "
          f"to the direct MFMult path")
    words = sum(delta("counters", f"serve.flushes.{r}")
                for r in ("full", "timeout", "drain", "manual"))
    print(f"dispatched {words} simulation words "
          f"({total / max(words, 1):.1f} transactions per word)")
    print(f"{'lane':<10} {'requests':>8} {'words':>6} {'occupancy':>10}")
    for lane in ("int64", "fp64", "fp32x2", "fp16x4", "reduce64"):
        requests = delta("counters", f"serve.{lane}.requests")
        count = delta("histograms", f"serve.{lane}.batch.occupancy",
                      "count")
        occupancy = (delta("histograms",
                           f"serve.{lane}.batch.occupancy", "total")
                     / count if count else 0.0)
        print(f"{lane:<10} {requests:>8} {count:>6} {occupancy:>8.1f}/64")
    assert words < total, "no coalescing happened"


if __name__ == "__main__":
    main()
