"""Design-space exploration with the gate-level substrate.

Run:  python examples/design_space_explorer.py  [--power]

Reproduces the paper's Sec. II trade-off study and extends it: builds
real netlists across radix / CPA style / pipeline placement, verifies
each functionally, and tabulates latency, clock, area (and optionally
Monte Carlo power; slower).  This is the workflow the substrate exists
for — the paper's Tables I-III are three points of this space.
"""

import sys

from repro.eval.sweep import (
    sweep_cpa_style,
    sweep_pipeline_cut,
    sweep_radix,
    sweep_tree_style,
)


def main():
    power_cycles = 10 if "--power" in sys.argv else 0
    if power_cycles:
        print("(including Monte Carlo power; this takes a minute)\n")

    for sweep in (sweep_radix, sweep_cpa_style, sweep_pipeline_cut,
                  sweep_tree_style):
        result = sweep(power_cycles=power_cycles)
        print(result.render())
        print()

    radix = {p.label: p for p in sweep_radix().points}
    print("Findings (cf. Sec. II-A):")
    print(f"  * radix-4 is the fastest combinationally "
          f"({radix['radix-4'].latency_ps:.0f} ps vs "
          f"{radix['radix-16'].latency_ps:.0f} ps) but its tree "
          f"dominates area and activity;")
    print(f"  * radix-8 pays the 3X pre-computation like radix-16 yet "
          f"keeps a taller tree ({radix['radix-8'].latency_ps:.0f} ps) — "
          f"dominated, as the paper argued;")
    print("  * radix-16 trades a slower carry-free front-end for the "
          "shallowest tree — the paper's pick for power.")


if __name__ == "__main__":
    main()
