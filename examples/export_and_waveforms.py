"""Export the gate-level designs to Verilog and dump waveforms.

Run:  python examples/export_and_waveforms.py [outdir]

Produces, under ``outdir`` (default ``./export_out``):

* ``reducer.v`` / ``reducer_tb.v``  — the Fig. 6 reducer and a
  self-checking testbench (vectors + expected values from this
  package's reference simulation);
* ``mfmult.v``                      — the full 3-stage multi-format unit;
* ``mfmult.vcd``                    — a waveform of a mixed-format batch
  through the pipeline, viewable in GTKWave.

This closes the loop with a real EDA flow: the netlists evaluated in
this reproduction can be handed to a synthesis tool or simulator as-is.
"""

import os
import random
import sys

from repro.core.pipeline_unit import (
    FRMT_FP32X2,
    FRMT_FP64,
    FRMT_INT64,
    build_mf_multiplier,
)
from repro.circuits.reducer import build_reducer
from repro.hdl.export import to_verilog_testbench, write_verilog
from repro.hdl.sim.levelized import LevelizedSimulator
from repro.hdl.sim.waveform import dump_vcd


def main():
    outdir = sys.argv[1] if len(sys.argv) > 1 else "export_out"
    os.makedirs(outdir, exist_ok=True)
    rng = random.Random(2017)

    reducer = build_reducer()
    write_verilog(reducer, os.path.join(outdir, "reducer.v"))
    vectors = {"d": [rng.getrandbits(64) for __ in range(12)]
               + [(1023 << 52) | (rng.getrandbits(23) << 29)
                  for __ in range(4)]}
    tb = to_verilog_testbench(reducer, vectors, 16)
    with open(os.path.join(outdir, "reducer_tb.v"), "w") as fh:
        fh.write(tb)
    print(f"reducer: {len(reducer.gates)} cells -> reducer.v + "
          f"self-checking reducer_tb.v (16 vectors)")

    unit = build_mf_multiplier()
    write_verilog(unit, os.path.join(outdir, "mfmult.v"))
    print(f"mfmult : {len(unit.gates)} cells, {len(unit.registers)} FFs "
          f"-> mfmult.v")

    stim = {"x": [], "y": [], "frmt": []}
    for code in (FRMT_INT64, FRMT_FP64, FRMT_FP32X2, FRMT_INT64,
                 FRMT_FP32X2, FRMT_FP64, FRMT_INT64, FRMT_FP64):
        stim["x"].append(rng.getrandbits(64) | (1 << 52) | (1 << 23))
        stim["y"].append(rng.getrandbits(64) | (1 << 52) | (1 << 23))
        stim["frmt"].append(code)
    run = LevelizedSimulator(unit).run(stim, 8)
    path = dump_vcd(unit, run, os.path.join(outdir, "mfmult.vcd"))
    print(f"waveform: 8 mixed-format cycles -> {path}")
    print(f"\nall artifacts in {outdir}/")


if __name__ == "__main__":
    main()
