"""Precision autotuning with the Fig. 6 reducer family.

Run:  python examples/precision_autotuner.py

Sec. IV proposes demoting binary64 operands to binary32 "if the
application allows for a reduced precision", and its future work wants
to extend the reduction to periodic significands.  This example tunes a
whole *workload* automatically:

* the exact Algorithm 1 reducer demotes only error-free operands;
* the PeriodicReducer additionally demotes repeating-fraction values
  (ratios of small integers, decimal constants);
* the LossyReducer demotes anything representable within an error
  budget the caller chooses.

For each policy it reports demotion coverage, energy (paper Table V
prices), and the worst relative error actually incurred.
"""

import random

from repro.bits.ieee754 import BINARY32, BINARY64, decode, encode
from repro.core.reduction import (
    LossyReducer,
    PeriodicReducer,
    reduce_binary64,
)
from repro.core.vector_unit import FormatPowerTable, IssueStats


class _ExactPolicy:
    name = "Algorithm 1 (exact)"

    def reduce(self, encoding):
        return reduce_binary64(encoding)


def autotune(pairs, policy, table):
    """Schedule with a given demotion policy; returns (stats, worst_err)."""
    stats = IssueStats(total_operations=len(pairs))
    worst = 0.0
    demoted = []
    for xe, ye in pairs:
        dx = policy.reduce(xe)
        dy = policy.reduce(ye)
        exact = decode(xe, BINARY64) * decode(ye, BINARY64)
        if dx.reduced and dy.reduced and _fits(dx, dy):
            got = (decode(dx.encoding32, BINARY32)
                   * decode(dy.encoding32, BINARY32))
            demoted.append(True)
            stats.demoted_operations += 1
        else:
            got = exact
            demoted.append(False)
            stats.fp64_cycles += 1
        if exact:
            worst = max(worst, abs(got - exact) / abs(exact))
    stats.fp32_dual_cycles = stats.demoted_operations // 2
    stats.fp32_single_cycles = stats.demoted_operations % 2
    return stats, worst


def _fits(dx, dy):
    predicted = dx.e32 + dy.e32 - 127
    return 1 <= predicted and predicted + 1 <= 254


def build_workload(n, rng):
    """A mix the paper's Sec. IV has in mind: small integers, small
    fractions, decimal constants, ratios — plus full-precision noise."""
    pool = []
    for __ in range(n):
        kind = rng.randrange(5)
        if kind == 0:
            v = float(rng.randint(-1000, 1000))        # small integers
        elif kind == 1:
            v = rng.randint(-1000, 1000) / 64.0        # small dyadics
        elif kind == 2:
            v = rng.randint(1, 9) / 10.0               # decimal constants
        elif kind == 3:
            v = rng.randint(1, 30) / rng.choice([3.0, 7.0, 9.0])  # ratios
        else:
            v = rng.uniform(-1e3, 1e3)                 # full precision
        pool.append(v if v != 0 else 1.0)
    return pool


def main():
    rng = random.Random(41)
    n = 400
    xs = build_workload(n, rng)
    ys = build_workload(n, rng)
    pairs = [(encode(a, BINARY64), encode(b, BINARY64))
             for a, b in zip(xs, ys)]
    table = FormatPowerTable()

    policies = [
        _ExactPolicy(),
        PeriodicReducer(max_period=12),
        LossyReducer(max_ulp_error=0.5),
    ]
    names = [p.name if hasattr(p, "name") else type(p).__name__
             for p in policies]

    print(f"workload: {n} binary64 multiplications "
          f"(mixed integers/fractions/ratios/noise)\n")
    print(f"{'policy':<24} {'demoted':>8} {'cycles':>7} "
          f"{'saved':>7} {'worst rel err':>14}")
    print("-" * 66)
    baseline = None
    for policy, name in zip(policies, names):
        stats, worst = autotune(pairs, policy, table)
        saved = stats.savings_fraction(table)
        if baseline is None:
            baseline = saved
        print(f"{name:<24} {stats.demoted_operations:>5}/{n:<3}"
              f" {stats.total_cycles:>6} {saved:>6.1%} {worst:>14.2e}")

    print("\nThe periodic and lossy reducers demote more of the stream "
          "(more dual-lane cycles,\nmore energy saved) at a bounded, "
          "sub-binary32-ulp accuracy cost — the trade\nSec. IV proposes.")


if __name__ == "__main__":
    main()
