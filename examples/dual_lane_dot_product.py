"""Dot products on the dual binary32 lanes — the vector-unit use case.

Run:  python examples/dual_lane_dot_product.py

The paper motivates the unit with "accelerators, multi-lane vector
units and GPUs" that issue several multiplications per cycle.  This
example computes a dot product three ways and compares cycles and
energy (priced with the paper's Table V power figures):

1.  binary64, one product per cycle;
2.  dual binary32, two products per cycle (operands demoted up front);
3.  dual binary32 via the Fig. 6 reducer, demoting only the elements
    that are *exactly* representable, falling back to binary64 for the
    rest — the paper's Sec. IV flow.
"""

import math
import random

from repro.bits.ieee754 import BINARY32, BINARY64, decode, encode
from repro.core import MFFormat, MFMult, OperandBundle, VectorMultiplier
from repro.core.vector_unit import FormatPowerTable


def dot_fp64(mf, xs, ys):
    """Reference flow: every product on the binary64 path."""
    acc = 0.0
    for a, b in zip(xs, ys):
        acc += mf.mul_fp64(a, b)
    return acc, len(xs)                     # cycles = one per product


def dot_fp32_dual(mf, xs, ys):
    """Everything demoted to binary32, two products per issued cycle."""
    acc = 0.0
    cycles = 0
    for i in range(0, len(xs) - 1, 2):
        r0, r1 = mf.mul_fp32_pair((xs[i], xs[i + 1]), (ys[i], ys[i + 1]))
        acc += r0 + r1
        cycles += 1
    if len(xs) % 2:
        r0, __ = mf.mul_fp32_pair((xs[-1], 1.0), (ys[-1], 1.0))
        acc += r0
        cycles += 1
    return acc, cycles


def dot_reduced(xs, ys):
    """Sec. IV flow: demote exactly-representable pairs, pair them up."""
    machine = VectorMultiplier(use_reduction=True)
    pairs = [(encode(a, BINARY64), encode(b, BINARY64))
             for a, b in zip(xs, ys)]
    result = machine.run(pairs)
    acc = sum(decode(p, BINARY64) for p in result.products64)
    return acc, result.stats


def main():
    rng = random.Random(2017)
    n = 200
    # A realistic mixed signal: half "nice" values (small dyadics that
    # fit binary32 exactly), half full-precision noise.
    xs, ys = [], []
    for i in range(n):
        if i % 2 == 0:
            xs.append(rng.randint(-4096, 4096) / 256.0)
            ys.append(rng.randint(-4096, 4096) / 256.0)
        else:
            xs.append(rng.uniform(-10, 10))
            ys.append(rng.uniform(-10, 10))

    mf = MFMult(fidelity="fast")
    table = FormatPowerTable()              # the paper's Table V prices
    exact = sum(a * b for a, b in zip(xs, ys))

    d64, cycles64 = dot_fp64(mf, xs, ys)
    e64 = cycles64 * table.energy_per_cycle_pj("fp64")
    print(f"binary64      : {d64:+.9f}  cycles={cycles64:4d} "
          f"energy={e64:7.1f} pJ  |err|={abs(d64 - exact):.2e}")

    d32, cycles32 = dot_fp32_dual(mf, xs, ys)
    e32 = cycles32 * table.energy_per_cycle_pj("fp32_dual")
    print(f"dual binary32 : {d32:+.9f}  cycles={cycles32:4d} "
          f"energy={e32:7.1f} pJ  |err|={abs(d32 - exact):.2e}")

    dred, stats = dot_reduced(xs, ys)
    ered = stats.energy_pj(table)
    print(f"Sec. IV mix   : {dred:+.9f}  cycles={stats.total_cycles:4d} "
          f"energy={ered:7.1f} pJ  |err|={abs(dred - exact):.2e}")
    print(f"                ({stats.demoted_operations}/{n} operations "
          f"demoted error-free, {stats.savings_fraction(table):.0%} "
          f"energy saved vs all-binary64)")

    assert abs(d64 - exact) < 1e-9
    assert stats.demoted_operations > 0
    assert ered < e64


if __name__ == "__main__":
    main()
