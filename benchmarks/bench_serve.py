"""Serving throughput: one-transaction-per-word vs coalesced words.

The bit-parallel levelized kernel charges by the gate count, not the
pattern count, so a simulation word carrying 64 independent transactions
costs barely more than a word carrying one.  This benchmark races the
two service configurations of :mod:`repro.serve` under the seeded
mixed-format load generator:

* **baseline** — ``max_batch=1``: every transaction dispatches its own
  word (what calling :class:`~repro.core.mfmult.MFMult` through the
  netlist per operation amounts to);
* **coalesced** — ``max_batch=64``: the server packs full words under
  saturating bursty load.

Both runs verify every result bit-for-bit against
:func:`repro.serve.transactions.reference_result`, so the speedup is
measured *with* the correctness check that batching changes nothing.

Emits ``BENCH_serve.json`` (repro.bench/1 envelope) at the repo root.
"""

import os

from _bench_io import write_bench
from repro.serve.loadgen import run_load, warm_engines

SEED = int(os.environ.get("REPRO_SERVE_BENCH_SEED", "2017"))

#: Request counts — the baseline pays ~1.5 ms *per transaction*, so it
#: gets a smaller sample; the coalesced run needs enough words for the
#: occupancy statistics to mean something.
BASELINE_REQUESTS = int(os.environ.get("REPRO_SERVE_BENCH_BASELINE", "128"))
COALESCED_REQUESTS = int(os.environ.get("REPRO_SERVE_BENCH_REQUESTS", "2048"))

#: Acceptance gates (ISSUE 6): sustained speedup and mean occupancy.
MIN_SPEEDUP = float(os.environ.get("REPRO_SERVE_BENCH_MIN_SPEEDUP", "20"))
MIN_OCCUPANCY = float(os.environ.get("REPRO_SERVE_BENCH_MIN_OCCUPANCY", "48"))

#: Saturating load: large bursts, no inter-burst gap, generous timeout
#: so words fill rather than flush early.
LOAD = dict(seed=SEED, burst_mean=64, gap_ms=0.0, specials=0.02,
            max_wait=0.05, verify=True, warm=False)


def _fmt(record):
    lat = record["latency_ms"]
    return (f"{record['mode']:<9} {record['requests']:>5} req "
            f"{record['wall_s']:7.3f} s  {record['requests_per_s']:>9.0f} "
            f"req/s  occ {record['mean_occupancy']:6.2f}/64  "
            f"p50/p99 {lat['p50']:.1f}/{lat['p99']:.1f} ms")


def test_bench_serve(report_sink):
    warm_engines()  # module build + kernel compile stay out of the race

    baseline = run_load(requests=BASELINE_REQUESTS, baseline=True, **LOAD)
    coalesced = run_load(requests=COALESCED_REQUESTS, baseline=False, **LOAD)

    assert baseline["mismatches"] == 0, "baseline diverged from MFMult"
    assert coalesced["mismatches"] == 0, "coalesced diverged from MFMult"

    speedup = (coalesced["requests_per_s"] / baseline["requests_per_s"]
               if baseline["requests_per_s"] else float("inf"))
    payload = {
        "baseline": baseline,
        "coalesced": coalesced,
        "speedup": round(speedup, 2),
        "min_speedup_gate": MIN_SPEEDUP,
        "min_occupancy_gate": MIN_OCCUPANCY,
    }
    write_bench("serve", payload, seed=SEED)

    lines = ["transaction-batched service, mixed-format saturating load",
             _fmt(baseline), _fmt(coalesced),
             f"speedup {speedup:.1f}x  (gate >= {MIN_SPEEDUP:.0f}x)  "
             f"occupancy {coalesced['mean_occupancy']:.2f}/64 "
             f"(gate >= {MIN_OCCUPANCY:.0f})"]
    report_sink("serve", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"coalescing speedup {speedup:.1f}x below {MIN_SPEEDUP}x gate")
    assert coalesced["mean_occupancy"] >= MIN_OCCUPANCY, (
        f"mean occupancy {coalesced['mean_occupancy']} below "
        f"{MIN_OCCUPANCY}/64")
