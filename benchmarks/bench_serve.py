"""Serving throughput: one-transaction-per-word vs coalesced words.

The bit-parallel levelized kernel charges by the gate count, not the
pattern count, so a simulation word carrying 64 independent transactions
costs barely more than a word carrying one.  This benchmark races the
two service configurations of :mod:`repro.serve` under the seeded
mixed-format load generator:

* **baseline** — ``max_batch=1``: every transaction dispatches its own
  word (what calling :class:`~repro.core.mfmult.MFMult` through the
  netlist per operation amounts to);
* **coalesced** — ``max_batch=64``: the server packs full base words
  under saturating bursty load;
* **wide** — ``word_patterns=512`` (``W=8`` limbs): the server packs
  superwords, amortizing each kernel pass over eight base words at the
  same (full-word) occupancy discipline as the coalesced leg.  The
  per-transaction submit path is width-independent, so the speedup
  saturates as W grows; W=8 sits at the knee for this request volume.

All runs verify every result bit-for-bit against
:func:`repro.serve.transactions.reference_result`, so the speedup is
measured *with* the correctness check that batching changes nothing.

Emits ``BENCH_serve.json`` (repro.bench/1 envelope) at the repo root.
"""

import os

from _bench_io import write_bench
from repro.serve.loadgen import run_load, warm_engines

SEED = int(os.environ.get("REPRO_SERVE_BENCH_SEED", "2017"))

#: Request counts — the baseline pays ~1.5 ms *per transaction*, so it
#: gets a smaller sample; the coalesced run needs enough words for the
#: occupancy statistics to mean something.
BASELINE_REQUESTS = int(os.environ.get("REPRO_SERVE_BENCH_BASELINE", "128"))
COALESCED_REQUESTS = int(os.environ.get("REPRO_SERVE_BENCH_REQUESTS", "2048"))

#: Acceptance gates (ISSUE 6): sustained speedup and mean occupancy.
MIN_SPEEDUP = float(os.environ.get("REPRO_SERVE_BENCH_MIN_SPEEDUP", "20"))
MIN_OCCUPANCY = float(os.environ.get("REPRO_SERVE_BENCH_MIN_OCCUPANCY", "48"))

#: Wide-word leg (ISSUE 9): W x 64-pattern superwords vs the 64-pattern
#: coalesced leg, at matched (saturating full-word) occupancy.
WIDE_WORD_PATTERNS = int(os.environ.get("REPRO_SERVE_BENCH_WIDE", "512"))
MIN_WIDE_SPEEDUP = float(
    os.environ.get("REPRO_SERVE_BENCH_MIN_WIDE_SPEEDUP", "2.0"))
MIN_WIDE_OCCUPANCY = float(
    os.environ.get("REPRO_SERVE_BENCH_MIN_WIDE_OCCUPANCY", "256"))

#: Rounds per leg — each timed window is well under a second, so a
#: single sample is at the mercy of the scheduler; keep the best
#: (fastest) round per leg, as bench_obs_overhead does.
ROUNDS = int(os.environ.get("REPRO_SERVE_BENCH_ROUNDS", "3"))

#: Saturating load: large bursts, no inter-burst gap, generous timeout
#: so words fill rather than flush early.
LOAD = dict(seed=SEED, burst_mean=64, gap_ms=0.0, specials=0.02,
            max_wait=0.05, verify=True, warm=False)


def _best_run(**kwargs):
    """Best-of-ROUNDS run_load: keep the fastest round's full record.

    Every round still verifies bit-for-bit (a round with mismatches
    fails the leg outright rather than being quietly discarded).
    """
    best = None
    for __ in range(ROUNDS):
        record = run_load(**kwargs)
        assert record["mismatches"] == 0, \
            f"{record['mode']} diverged from MFMult"
        if best is None or record["requests_per_s"] > best["requests_per_s"]:
            best = record
    return best


def _fmt(record, label=None):
    lat = record["latency_ms"]
    return (f"{label or record['mode']:<9} {record['requests']:>5} req "
            f"{record['wall_s']:7.3f} s  {record['requests_per_s']:>9.0f} "
            f"req/s  occ {record['mean_occupancy']:6.2f}"
            f"/{record['word_capacity']}  "
            f"p50/p99 {lat['p50']:.1f}/{lat['p99']:.1f} ms")


def test_bench_serve(report_sink):
    warm_engines()  # module build + kernel compile stay out of the race

    baseline = _best_run(requests=BASELINE_REQUESTS, baseline=True, **LOAD)
    coalesced = _best_run(requests=COALESCED_REQUESTS, baseline=False,
                          **LOAD)
    # Matched occupancy: same saturating discipline, bursts scaled to
    # keep filling full (now wider) words.
    wide = _best_run(requests=COALESCED_REQUESTS, baseline=False,
                     word_patterns=WIDE_WORD_PATTERNS,
                     **{**LOAD, "burst_mean": WIDE_WORD_PATTERNS})

    speedup = (coalesced["requests_per_s"] / baseline["requests_per_s"]
               if baseline["requests_per_s"] else float("inf"))
    wide_speedup = (wide["requests_per_s"] / coalesced["requests_per_s"]
                    if coalesced["requests_per_s"] else float("inf"))
    payload = {
        "baseline": baseline,
        "coalesced": coalesced,
        "wide": wide,
        "speedup": round(speedup, 2),
        "wide_speedup_vs_coalesced64": round(wide_speedup, 2),
        "wide_word_patterns": WIDE_WORD_PATTERNS,
        "min_speedup_gate": MIN_SPEEDUP,
        "min_occupancy_gate": MIN_OCCUPANCY,
        "min_wide_speedup_gate": MIN_WIDE_SPEEDUP,
        "min_wide_occupancy_gate": MIN_WIDE_OCCUPANCY,
    }
    write_bench("serve", payload, seed=SEED)

    lines = ["transaction-batched service, mixed-format saturating load",
             _fmt(baseline), _fmt(coalesced),
             _fmt(wide, label=f"wide-w{WIDE_WORD_PATTERNS // 64}"),
             f"speedup {speedup:.1f}x  (gate >= {MIN_SPEEDUP:.0f}x)  "
             f"occupancy {coalesced['mean_occupancy']:.2f}/64 "
             f"(gate >= {MIN_OCCUPANCY:.0f})",
             f"wide (W={WIDE_WORD_PATTERNS // 64}) speedup "
             f"{wide_speedup:.2f}x vs coalesced-64 "
             f"(gate >= {MIN_WIDE_SPEEDUP:.1f}x)  occupancy "
             f"{wide['mean_occupancy']:.2f}/{WIDE_WORD_PATTERNS} "
             f"(gate >= {MIN_WIDE_OCCUPANCY:.0f})"]
    report_sink("serve", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"coalescing speedup {speedup:.1f}x below {MIN_SPEEDUP}x gate")
    assert coalesced["mean_occupancy"] >= MIN_OCCUPANCY, (
        f"mean occupancy {coalesced['mean_occupancy']} below "
        f"{MIN_OCCUPANCY}/64")
    assert wide_speedup >= MIN_WIDE_SPEEDUP, (
        f"wide-word speedup {wide_speedup:.2f}x below "
        f"{MIN_WIDE_SPEEDUP}x gate")
    assert wide["mean_occupancy"] >= MIN_WIDE_OCCUPANCY, (
        f"wide mean occupancy {wide['mean_occupancy']} below "
        f"{MIN_WIDE_OCCUPANCY}/{WIDE_WORD_PATTERNS}")
