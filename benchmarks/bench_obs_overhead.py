"""Instrumentation overhead: the observability layer must be ~free.

Times the radix-16 glitch replay (the hottest instrumented path) in
three configurations —

* **obs disabled**: registry muted (``set_enabled(False)``), tracing
  off — the floor;
* **obs on, trace off**: the shipping default — counters and records
  collected (now including the log-bucket quantile sketches on every
  timer/histogram observation) **with the background gauge sampler
  running**, spans a no-op;
* **obs on, trace on**: spans recorded too (what ``--trace`` pays).

Each leg takes the best of ``ROUNDS`` runs (min filters scheduler
noise), asserts the per-net toggle counts are identical across legs,
and writes ``BENCH_obs_overhead.json`` (``repro.bench/1`` envelope) at
the repository root.  The gate: metrics-plus-sampler overhead must stay
under 5% of the disabled floor.  Tracing overhead is recorded honestly
but not gated — it is opt-in.

A second subject times the serve hot path with **wide words live**: a
``WIDE_PATTERNS``-transaction superword through the int64 lane engine
(spans, counters and occupancy histograms firing per word).  Costs are
normalized **per pattern**, not per word — a wide word amortizes its
instrumentation over W x 64 patterns, and gating per-word numbers
would let per-pattern overhead grow W-fold unnoticed.  Same <5% gate.
"""

import json
import os
import time

from _bench_io import write_bench

from repro import obs
from repro.eval.experiments import cached_module
from repro.eval.workloads import WorkloadGenerator
from repro.hdl.library import default_library
from repro.hdl.power.monte_carlo import _event_toggles, shared_event_simulator
from repro.hdl.sim.levelized import LevelizedSimulator

N_CYCLES = int(os.environ.get("REPRO_OBS_BENCH_CYCLES", "10"))
ROUNDS = int(os.environ.get("REPRO_OBS_BENCH_ROUNDS", "5"))
MAX_METRICS_OVERHEAD = 0.05

#: Wide-word serve subject: patterns per superword (W = /64 limbs).
WIDE_PATTERNS = int(os.environ.get("REPRO_OBS_BENCH_WIDE", "256"))


def _best_of(fn, rounds):
    best = float("inf")
    value = None
    for __ in range(rounds):
        t0 = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best, value


def test_bench_obs_overhead(report_sink):
    module = cached_module("r16")
    lib = default_library()
    stim = WorkloadGenerator(2017).multiplier_stimulus(N_CYCLES)
    run = LevelizedSimulator(module).run(stim, N_CYCLES)
    transitions = N_CYCLES - 1

    # Warm the shared simulator and its kernels outside the clocks.
    kernel = shared_event_simulator(module, lib).kernel
    _event_toggles(module, lib, run, N_CYCLES)

    def replay():
        totals, __ = _event_toggles(module, lib, run, N_CYCLES)
        return totals

    # Wide-word serve subject: one W x 64-pattern superword through the
    # int64 lane engine — the serve hot path with its spans/histograms.
    import random as _random

    from repro.serve.engine import lane_engine
    from repro.serve.transactions import Transaction, TxKind

    _rng = _random.Random(2017)
    wide_txs = [Transaction.int64(_rng.getrandbits(64),
                                  _rng.getrandbits(64))
                for __ in range(WIDE_PATTERNS)]
    engine = lane_engine(TxKind.INT64)
    engine.execute(wide_txs[:64])          # warm outside the clocks

    def wide_serve():
        return [(r.ph, r.pl) for r in engine.execute(wide_txs)]

    reg = obs.registry()
    # The "metrics" leg pays for everything the live-telemetry default
    # costs: sketch bucketing on every observation plus the background
    # sampler thread ticking its ring buffers.
    sampler = obs.TimeSeriesSampler(interval_s=0.05, registry=reg)
    sampler.add_source("bench.constant", lambda: 1.0)
    sampler.add_source("bench.registry.mean",
                       lambda: (reg.counter_value("sampler.ticks") or None))
    legs = {}
    wide_legs = {}
    try:
        reg.set_enabled(False)
        legs["disabled"] = _best_of(replay, ROUNDS)
        wide_legs["disabled"] = _best_of(wide_serve, ROUNDS)
        reg.set_enabled(True)
        reg.reset()
        sampler.start()
        legs["metrics"] = _best_of(replay, ROUNDS)
        wide_legs["metrics"] = _best_of(wide_serve, ROUNDS)
        obs.start_trace()
        legs["trace"] = _best_of(replay, ROUNDS)
    finally:
        sampler.stop()
        obs.stop_trace()
        reg.set_enabled(True)
        reg.reset()

    base_s, base_totals = legs["disabled"]
    for name, (__, totals) in legs.items():
        assert totals == base_totals, f"{name}: toggles diverged"
    wide_base_s, wide_base_results = wide_legs["disabled"]
    for name, (__, results) in wide_legs.items():
        assert results == wide_base_results, \
            f"wide serve {name}: results diverged"

    def leg_entry(seconds):
        return {
            "seconds": seconds,
            "ms_per_transition": seconds * 1000 / transitions,
            "overhead_vs_disabled": seconds / base_s - 1.0,
        }

    def wide_entry(seconds):
        # Per-PATTERN normalization: a superword must not hide (or be
        # blamed for) W x the instrumentation of a base word.
        return {
            "seconds": seconds,
            "ms_per_pattern": seconds * 1000 / WIDE_PATTERNS,
            "overhead_vs_disabled": seconds / wide_base_s - 1.0,
        }

    payload = {
        "design": "r16",
        "n_cycles": N_CYCLES,
        "rounds": ROUNDS,
        "kernel": kernel,
        "sampler_enabled": True,
        "quantile_sketches": True,
        "max_metrics_overhead": MAX_METRICS_OVERHEAD,
        "legs": {name: leg_entry(seconds)
                 for name, (seconds, __) in legs.items()},
        "wide_serve": {
            "word_patterns": WIDE_PATTERNS,
            "limbs": WIDE_PATTERNS // 64,
            "legs": {name: wide_entry(seconds)
                     for name, (seconds, __) in wide_legs.items()},
        },
    }
    payload["wide_serve"]["overhead_vs_disabled"] = \
        payload["wide_serve"]["legs"]["metrics"]["overhead_vs_disabled"]
    write_bench("obs_overhead", payload, seed=2017)
    report_sink("obs_overhead", json.dumps(payload, indent=2))

    metrics_overhead = payload["legs"]["metrics"]["overhead_vs_disabled"]
    assert metrics_overhead < MAX_METRICS_OVERHEAD, (
        f"metrics instrumentation costs {metrics_overhead:.1%} on the "
        f"r16 glitch replay (gate: {MAX_METRICS_OVERHEAD:.0%})")
    wide_overhead = payload["wide_serve"]["overhead_vs_disabled"]
    assert wide_overhead < MAX_METRICS_OVERHEAD, (
        f"metrics instrumentation costs {wide_overhead:.1%} per pattern "
        f"on the W={WIDE_PATTERNS // 64} wide-word serve path "
        f"(gate: {MAX_METRICS_OVERHEAD:.0%})")
