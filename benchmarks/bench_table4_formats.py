"""Table IV: the IEEE 754-2008 binary format parameters.

A constants table — the benchmark asserts our codec layer derives every
entry of the paper's Table IV rather than hard-coding it.
"""

from repro.eval.orchestrator import run_experiment

EXPECTED = {
    "storage (bits)": (16, 32, 64, 128),
    "precision p (bits)": (11, 24, 53, 113),
    "exponent length (bits)": (5, 8, 11, 15),
    "Emax": (15, 127, 1023, 16383),
    "bias": (15, 127, 1023, 16383),
    "trailing significand f": (10, 23, 52, 112),
}


def test_bench_table4(benchmark, report_sink):
    result = benchmark.pedantic(run_experiment, args=("table4",),
                                rounds=1, iterations=1)
    report_sink("table4_formats", result.render())
    rows = {r[0]: tuple(r[1:]) for r in result.rows}
    assert rows == EXPECTED
