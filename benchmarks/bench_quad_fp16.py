"""Table V, continued: the quad-binary16 fourth format (extension).

The paper's trend — narrower formats on more lanes buy power
efficiency — extrapolated one step: four binary16 products per cycle on
the same array.  This measures the quad-capable unit across all four
formats, checks the classic orderings still hold on it, and asks
whether fp16x4 continues the GFLOPS/W climb.
"""

import os

from repro.core.pipeline_unit import FRMT_FP16X4, build_mf_multiplier
from repro.eval.tables import render_table
from repro.eval.workloads import WorkloadGenerator
from repro.hdl.library import default_library
from repro.hdl.power.monte_carlo import estimate_power

N_CYCLES = int(os.environ.get("REPRO_POWER_CYCLES", "16"))


def _fp16_stimulus(gen, n_cycles):
    import random

    rng = random.Random(4242)

    def enc16():
        return ((rng.getrandbits(1) << 15) | (rng.randint(8, 22) << 10)
                | rng.getrandbits(10))

    def word():
        return sum(enc16() << (16 * k) for k in range(4))

    return {"x": [word() for __ in range(n_cycles)],
            "y": [word() for __ in range(n_cycles)],
            "frmt": [FRMT_FP16X4] * n_cycles}


def run_quad_study(n_cycles=N_CYCLES):
    lib = default_library()
    module = build_mf_multiplier(quad_fp16=True)
    flops = {"int64": 1, "fp64": 1, "fp32_dual": 2, "fp16_quad": 4}
    rows = []
    measured = {}
    for fmt in ("int64", "fp64", "fp32_dual", "fp16_quad"):
        gen = WorkloadGenerator(2017)
        if fmt == "fp16_quad":
            stim = _fp16_stimulus(gen, n_cycles)
        else:
            stim = gen.mf_stimulus(fmt, n_cycles)
        report = estimate_power(module, lib, stim, n_cycles)
        gflops = flops[fmt] * 0.88           # paper's 880 MHz convention
        watts = report.scaled_to(880.0).total_mw / 1000.0
        measured[fmt] = (report.total_mw, gflops / watts)
        rows.append((fmt, round(report.total_mw, 2), round(gflops, 2),
                     round(gflops / watts, 2)))
    return rows, measured


def test_bench_quad_fp16(benchmark, report_sink):
    rows, measured = benchmark.pedantic(run_quad_study, rounds=1,
                                        iterations=1)
    text = render_table(
        ("format", "mW @100MHz", "GFLOPS", "GFLOPS/W"), rows,
        title="Table V extended: the quad binary16 fourth format "
              "(quad_fp16=True unit)")
    report_sink("quad_fp16", text)

    # The paper's orderings must survive on the quad-capable unit...
    assert measured["int64"][0] > measured["fp64"][0] \
        > measured["fp32_dual"][0]
    # ...and the trend continues: fp16x4 is the most power-efficient
    # mode (4 FLOPs/cycle at the lowest meaningful-bit activity).
    assert measured["fp16_quad"][1] > measured["fp32_dual"][1] \
        > measured["fp64"][1] > measured["int64"][1]
