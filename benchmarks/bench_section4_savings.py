"""Sec. IV: power saved by demoting reducible binary64 operands.

Runs the issue-level machine over mixed workloads, pricing cycles first
with the paper's Table V power figures and then with our own measured
ones — the savings trend must hold under both.
"""

import os

from repro.eval.orchestrator import run_experiment

N_CYCLES = int(os.environ.get("REPRO_POWER_CYCLES", "16"))


def test_bench_section4(benchmark, report_sink):
    with_paper_prices = benchmark.pedantic(
        run_experiment, args=("section4",), kwargs={"n_ops": 400},
        rounds=1, iterations=1)

    measured_table = run_experiment(
        "table5", n_cycles=N_CYCLES).power_table()
    with_measured_prices = run_experiment(
        "section4", n_ops=400, power_table=measured_table)

    text = (with_paper_prices.render()
            .replace("(measured per-format power)",
                     "(paper Table V power figures)")
            + "\n\n" + with_measured_prices.render())
    report_sink("section4_savings", text)

    for result in (with_paper_prices, with_measured_prices):
        savings = [row[3] for row in result.rows]
        assert savings == sorted(savings)           # monotone in mix
        assert savings[0] == 0.0
        assert savings[-1] > 0.45                   # dual fp32 >2x efficient
