"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper, prints the
paper-vs-measured report, and records it under ``benchmarks/results/``
so the numbers survive the run (EXPERIMENTS.md references them).
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def report_sink():
    """Print a rendered experiment report and persist it to results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def sink(name, text):
        banner = f"\n===== {name} =====\n{text}\n"
        print(banner)
        with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
            fh.write(text + "\n")

    return sink
