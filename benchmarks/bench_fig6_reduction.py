"""Fig. 6 / Algorithm 1: the binary64 -> binary32 reducer.

Structural inventory (5-bit + 12-bit CPAs, 29-input OR tree, output
mux), circuit-vs-algorithm co-simulation, and reducibility statistics.
"""

import random

from repro.core.reduction import reduce_binary64
from repro.eval.experiments import cached_module
from repro.eval.orchestrator import run_experiment
from repro.hdl.sim.levelized import LevelizedSimulator


def _cosimulate(n=512):
    module = cached_module("reducer")
    rng = random.Random(66)
    cases = [rng.getrandbits(64) for __ in range(n // 2)]
    cases += [((rng.getrandbits(1) << 63)
               | (rng.randint(897, 1150) << 52)
               | (rng.getrandbits(23) << 29)) for __ in range(n // 2)]
    run = LevelizedSimulator(module).run({"d": cases}, len(cases))
    for t, d in enumerate(cases):
        expect = reduce_binary64(d)
        assert run.bus_word(module.outputs["reduced"], t) \
            == (1 if expect.reduced else 0)
        out = run.bus_word(module.outputs["out"], t)
        assert out == (expect.encoding32 if expect.reduced else d)
    return len(cases)


def test_bench_fig6(benchmark, report_sink):
    result = run_experiment("fig6", n_random=20000)
    checked = benchmark.pedantic(_cosimulate, rounds=1, iterations=1)
    report_sink("fig6_reduction",
                result.render() + f"\ncircuit co-simulations: {checked}")
    assert result.gates < 400          # "the small hardware of Fig. 6"
    assert result.exhaustive_checked == 40
