"""Fig. 4: the dual-binary32 partial product array arrangement.

Renders the occupancy map (lower lane in bits 0..63, upper in 64..127,
per-lane sign-extension corrections) and verifies lane isolation by
co-simulating the shared structural array in both modes.
"""

import random

from repro.bits.utils import mask
from repro.circuits.multiples import build_multiples
from repro.circuits.ppgen import build_mf_pp_columns
from repro.circuits.primitives import GateBuilder
from repro.circuits.recoder import build_recoder
from repro.eval.orchestrator import run_experiment
from repro.hdl.module import Module
from repro.hdl.sim.levelized import LevelizedSimulator


def _lane_isolation_check(n_cases=48):
    m = Module("fig4")
    gb = GateBuilder(m)
    x = m.input("x", 64)
    y = m.input("y", 64)
    fp32 = m.input("fp32", 1)
    multiples = build_multiples(gb, x, 4)
    digits = build_recoder(gb, y, 4)
    columns, __ = build_mf_pp_columns(gb, digits, multiples, fp32[0])
    rng = random.Random(4)
    cases = [(rng.getrandbits(24), rng.getrandbits(24),
              rng.getrandbits(24), rng.getrandbits(24))
             for __ in range(n_cases)]
    stim = {"x": [c[0] | (c[2] << 32) for c in cases],
            "y": [c[1] | (c[3] << 32) for c in cases],
            "fp32": [1] * n_cases}
    run = LevelizedSimulator(m).run(stim, n_cases)
    for t, (x0, y0, x1, y1) in enumerate(cases):
        lo = sum(
            (gb.const_of(net) if gb.const_of(net) is not None
             else run.net_value(net, t)) << c
            for c in range(64) for net in columns[c]) & mask(64)
        hi = sum(
            (gb.const_of(net) if gb.const_of(net) is not None
             else run.net_value(net, t)) << (c - 64)
            for c in range(64, 128) for net in columns[c]) & mask(64)
        assert lo == x0 * y0
        assert hi == x1 * y1
    return n_cases


def test_bench_fig4(benchmark, report_sink):
    result = run_experiment("fig4")
    checked = benchmark.pedantic(_lane_isolation_check, rounds=1,
                                 iterations=1)
    report_sink("fig4_dual_lane",
                result.render()
                + f"\nlane-isolation co-simulations: {checked}")
    assert result.max_height_dual <= 9     # two independent 7-row lanes
    assert result.max_height_int >= 17
