"""Sec. III-E: the activity decomposition behind Table V's ratios.

The paper reasons: 68% of significand bits are meaningful in binary64,
the measured binary64/int64 power ratio is ~80%, the rest is S&EH
overhead.  This benchmark reproduces the decomposition from per-block
power on the multi-format unit.
"""

import os

from repro.eval.orchestrator import run_experiment

N_CYCLES = int(os.environ.get("REPRO_POWER_CYCLES", "16"))


def test_bench_activity(benchmark, report_sink):
    result = benchmark.pedantic(
        run_experiment, args=("activity",), kwargs={"n_cycles": N_CYCLES},
        rounds=1, iterations=1)
    report_sink("activity_decomposition", result.render())

    # binary64 must sit between the bit-count bound (0.68) and parity,
    # near the paper's ~0.80 measurement.
    assert 0.68 <= result.fp64_over_int64_total <= 0.95
    # The significand datapath dominates every format's power.
    for fmt in ("int64", "fp64", "fp32_dual"):
        assert result.significand_mw[fmt] > result.seh_mw[fmt]
    # S&EH burns strictly less in the narrower formats than the ordering
    # of the whole unit: dual fp32 < fp64 < int64 holds on totals.
    assert result.total_mw["fp32_dual"] < result.total_mw["fp64"] \
        < result.total_mw["int64"]
