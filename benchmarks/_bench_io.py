"""Shared result-envelope writer for the ``BENCH_*.json`` artifacts.

Every benchmark that persists machine-readable numbers at the repository
root goes through :func:`write_bench`, which wraps the payload in one
common envelope::

    {
      "schema": "repro.bench/1",
      "bench": "<name>",
      "seed": <seed or null>,
      "host": {"cpu_count": ..., "platform": ..., "machine": ...},
      "versions": {"python": ..., "repro": ...},
      "results": {...}              # the benchmark's own payload
    }

The envelope exists so downstream comparisons (CI artifact diffs, the
paper report pipeline) can tell *where* a number came from — most
importantly the honest ``cpu_count`` of the host, since several
benchmarks measure parallel speedups that are meaningless without it.
"""

import json
import os
import platform
import sys
from pathlib import Path

from repro import __version__ as _repro_version

#: Envelope schema identifier; bump on incompatible layout changes.
SCHEMA = "repro.bench/1"

#: Repository root — BENCH_*.json artifacts live here (CI uploads them).
REPO_ROOT = Path(__file__).resolve().parents[1]


def host_info():
    """Honest facts about the machine the numbers were measured on."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def envelope(name, payload, seed=None):
    """Wrap ``payload`` in the repro.bench/1 envelope (pure, no I/O)."""
    return {
        "schema": SCHEMA,
        "bench": name,
        "seed": seed,
        "host": host_info(),
        "versions": {
            "python": sys.version.split()[0],
            "repro": _repro_version,
        },
        "results": payload,
    }


def write_bench(name, payload, seed=None):
    """Write ``BENCH_<name>.json`` at the repo root; returns its path."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(envelope(name, payload, seed=seed),
                               indent=2) + "\n")
    return path
