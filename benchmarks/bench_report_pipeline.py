"""The one-command report pipeline: all scheduler backends raced.

Races full-report generations through the orchestrator, one leg per
execution backend —

* **serial cold**: ``workers=1``, auto backend (inline), fresh cache;
* **parallel cold**: ``workers=4``, auto backend, fresh cache — on a
  box with fewer than 4 cores the auto policy *downgrades to inline*
  (counted as ``orchestrator.backend.downgraded``) instead of paying
  fork-pool overhead for time slicing, so this leg can never lose to
  serial by design;
* **fork cold** / **workers cold**: the explicit process backends on a
  fresh cache each — the ``workers`` leg exercises the work-stealing
  pool; on hosts with >= 4 cores it must beat serial by 2.5x;
* **warm**: the auto leg rerun over the parallel run's cache;
* **remote cold**: two localhost worker daemons behind ``--backend
  remote`` (same total worker count as the ``workers`` leg); on hosts
  with >= 4 cores it must not lose to the same-host ``workers`` pool;
* **remote cachesync**: a *fresh coordinator cache* against the warm
  daemons — every leaf must arrive via a digest pull, with **zero**
  jobs dispatched;
* **remote kill**: fresh daemons, one of them stopped a third of the
  way through the run — the report must still complete with zero lost
  leaves (in-flight work re-queued onto the survivor).

All rendered reports must be *byte-identical* (the orchestrator's
determinism contract, now across backends and machines too).  The
envelope records per-backend rows, the longest single leaf of the
serial leg — fine-grained stealable leaves keep ``max_leaf_fraction``
at or below 0.25 of the graph wall, which is what makes stealing
effective — and the ``dist.*`` headline metrics the perf gate tracks.
"""

import json
import os
import threading
import time

from _bench_io import write_bench
from repro.eval.orchestrator import ResultCache
from repro.eval.report import generate_report
from repro.eval.sched.daemon import WorkerDaemon

N_CYCLES = int(os.environ.get("REPRO_REPORT_BENCH_CYCLES", "6"))
MUTATIONS = int(os.environ.get("REPRO_REPORT_BENCH_MUTATIONS", "8"))
PARALLEL_WORKERS = 4
REMOTE_DAEMONS = 2


def _one_run(tmp_path, tag, workers, cache_root, backend="auto",
             hosts=None, progress=None):
    cache = ResultCache(root=str(cache_root))
    metrics = {}
    t0 = time.perf_counter()
    text = generate_report(
        n_cycles=N_CYCLES, out_path=str(tmp_path / f"report_{tag}.txt"),
        include_sweeps=True, include_verification=True,
        mutations=MUTATIONS, workers=workers, cache=cache,
        metrics=metrics, backend=backend, hosts=hosts, progress=progress)
    seconds = time.perf_counter() - t0
    counters = metrics["counters"]
    job_rows = [r for r in metrics["records"].get("report.jobs", ())
                if not r["cached"]]
    max_leaf = max((r["seconds"] for r in job_rows), default=0.0)
    return {"tag": tag, "backend": backend, "workers": workers,
            "effective_workers": min(workers, os.cpu_count() or 1),
            "oversubscribed": workers > (os.cpu_count() or 1),
            "downgraded":
                counters.get("orchestrator.backend.downgraded", 0) > 0,
            "steals": counters.get("orchestrator.steals", 0),
            "seconds": seconds,
            "max_leaf_seconds": max_leaf,
            "max_leaf_fraction": round(max_leaf / max(seconds, 1e-9), 4),
            "n_jobs": counters.get("report.jobs", 0),
            "cache_hits": counters.get("report.cache_hits", 0),
            "remote_jobs": counters.get("sched.remote.jobs", 0),
            "remote_pulled": counters.get("sched.remote.cache.pulled", 0),
            "remote_requeues": counters.get("sched.remote.requeues", 0),
            "remote_hosts_lost":
                counters.get("sched.remote.hosts.lost", 0),
            "text": text}


def _start_daemons(tmp_path, tag, per_daemon_workers):
    """Two localhost worker daemons with fresh private object stores."""
    return [
        WorkerDaemon(workers=per_daemon_workers,
                     cache=ResultCache(
                         root=str(tmp_path / f"daemon_{tag}_{i}"),
                         fingerprint="(daemon)"),
                     label=f"bench-{tag}-{i}").start()
        for i in range(REMOTE_DAEMONS)
    ]


def _hosts(daemons):
    return ",".join(f"127.0.0.1:{d.port}" for d in daemons)


def test_bench_report_pipeline(benchmark, report_sink, tmp_path):
    cpus = os.cpu_count() or 1
    pool_workers = PARALLEL_WORKERS if cpus >= PARALLEL_WORKERS \
        else max(2, cpus)

    serial = _one_run(tmp_path, "serial_cold", 1, tmp_path / "cache_serial")
    parallel = _one_run(tmp_path, "parallel_cold", PARALLEL_WORKERS,
                        tmp_path / "cache_parallel")
    fork = _one_run(tmp_path, "fork_cold", pool_workers,
                    tmp_path / "cache_fork", backend="fork")
    stealing = _one_run(tmp_path, "workers_cold", pool_workers,
                        tmp_path / "cache_workers", backend="workers")

    # The multi-host legs: the same report through two localhost worker
    # daemons, with the same *total* worker count as the workers leg.
    per_daemon = max(1, pool_workers // REMOTE_DAEMONS)
    daemons = _start_daemons(tmp_path, "cold", per_daemon)
    try:
        remote = _one_run(tmp_path, "remote_cold", pool_workers,
                          tmp_path / "cache_remote", backend="remote",
                          hosts=_hosts(daemons))
        # Digest cache sync: a fresh coordinator cache against the now
        # warm daemons must execute *zero* leaves — everything is
        # answered from the offer and pulled by sha256 digest.
        cachesync = _one_run(tmp_path, "remote_cachesync", pool_workers,
                             tmp_path / "cache_remote2", backend="remote",
                             hosts=_hosts(daemons))
    finally:
        for daemon in daemons:
            daemon.stop()

    # Fault tolerance: fresh daemons, one stopped a third of the way in.
    kill_daemons = _start_daemons(tmp_path, "kill", per_daemon)
    kill_at = max(2, remote["n_jobs"] // 3)
    done = {"n": 0, "fired": False}

    def _kill_progress(event):
        done["n"] += 1
        if done["n"] >= kill_at and not done["fired"]:
            done["fired"] = True
            threading.Thread(target=kill_daemons[1].stop,
                             daemon=True).start()

    try:
        kill = _one_run(tmp_path, "remote_kill", pool_workers,
                        tmp_path / "cache_kill", backend="remote",
                        hosts=_hosts(kill_daemons),
                        progress=_kill_progress)
    finally:
        for daemon in kill_daemons:
            daemon.stop()

    # The timed leg: the warm rerun over the parallel run's cache.
    warm = benchmark.pedantic(
        _one_run, args=(tmp_path, "warm", PARALLEL_WORKERS,
                        tmp_path / "cache_parallel"),
        rounds=1, iterations=1)

    # Determinism contract: every backend renders the same bytes — the
    # kill leg doubles as the zero-lost-leaves proof (a dropped leaf
    # could not render an identical report).
    runs = (serial, parallel, fork, stealing, remote, cachesync, kill,
            warm)
    for run in runs[1:]:
        assert run["text"] == serial["text"], run["tag"]
    assert warm["cache_hits"] >= 1
    assert cachesync["remote_jobs"] == 0
    assert cachesync["remote_pulled"] >= 1
    assert done["fired"], "kill leg never reached its trigger point"
    assert kill["remote_hosts_lost"] == 1

    warm_speedup = serial["seconds"] / max(warm["seconds"], 1e-9)
    parallel_speedup = serial["seconds"] / max(parallel["seconds"], 1e-9)
    workers_speedup = serial["seconds"] / max(stealing["seconds"], 1e-9)
    dist_speedup = serial["seconds"] / max(remote["seconds"], 1e-9)
    record = {
        "n_cycles": N_CYCLES,
        "mutations": MUTATIONS,
        "cpu_count": cpus,
        "runs": [{k: v for k, v in run.items() if k != "text"}
                 for run in runs],
        "parallel_speedup_vs_serial": round(parallel_speedup, 3),
        "workers_speedup_vs_serial": round(workers_speedup, 3),
        "warm_speedup_vs_serial_cold": round(warm_speedup, 3),
        "max_leaf_fraction_serial": serial["max_leaf_fraction"],
        "dist": {
            "speedup_vs_serial": round(dist_speedup, 3),
            "requeues": kill["remote_requeues"],
            "cachesync_jobs": cachesync["remote_jobs"],
            "cachesync_pulled": cachesync["remote_pulled"],
            "hosts": REMOTE_DAEMONS,
            "workers_per_host": per_daemon,
        },
    }
    write_bench("report_pipeline", record)
    report_sink("report_pipeline", json.dumps(record, indent=2))

    assert warm_speedup >= 10.0
    # Stealable leaves keep the longest leaf well under the graph wall.
    assert serial["max_leaf_fraction"] <= 0.25
    # The auto backend never loses to serial: an oversubscribed request
    # downgrades to the identical inline path instead of time slicing.
    if parallel["downgraded"]:
        assert parallel["effective_workers"] == 1
    assert parallel_speedup >= 1.0
    # The parallel gates need real cores; smaller boxes only record.
    if cpus >= PARALLEL_WORKERS:
        assert parallel_speedup >= 3.0
        assert workers_speedup >= 2.5
        # Two localhost daemons must not lose to the same-host stealing
        # pool by more than the wire tax.
        assert dist_speedup >= workers_speedup * 0.8
