"""The one-command report pipeline: serial vs parallel vs warm cache.

Races three full-report generations through the orchestrator —

* **serial cold**: ``workers=1`` against a fresh result cache,
* **parallel cold**: ``workers=4`` against another fresh cache,
* **warm**: ``workers=4`` again, reusing the parallel run's cache —

and asserts the three rendered reports are *byte-identical* (the
orchestrator's determinism contract) while recording the speedups in
``BENCH_report_pipeline.json`` (repro.bench/1 envelope).  The warm
rerun must be at least an order of magnitude faster than any cold run.

Parallel numbers are recorded *honestly*: every run carries both the
requested worker count and ``effective_workers = min(workers,
os.cpu_count())``, and the parallel-vs-serial speedup is asserted only
on machines that actually have the cores — on smaller boxes the pool is
oversubscribed (the orchestrator counts this in
``orchestrator.workers.oversubscribed``) and the numbers are recorded
without the gate.
"""

import json
import os
import time

from _bench_io import write_bench
from repro.eval.orchestrator import ResultCache
from repro.eval.report import generate_report

N_CYCLES = int(os.environ.get("REPRO_REPORT_BENCH_CYCLES", "6"))
MUTATIONS = int(os.environ.get("REPRO_REPORT_BENCH_MUTATIONS", "8"))
PARALLEL_WORKERS = 4


def _one_run(tmp_path, tag, workers, cache_root):
    cache = ResultCache(root=str(cache_root))
    metrics = {}
    t0 = time.perf_counter()
    text = generate_report(
        n_cycles=N_CYCLES, out_path=str(tmp_path / f"report_{tag}.txt"),
        include_sweeps=True, include_verification=True,
        mutations=MUTATIONS, workers=workers, cache=cache,
        metrics=metrics)
    seconds = time.perf_counter() - t0
    counters = metrics["counters"]
    return {"tag": tag, "workers": workers,
            "effective_workers": min(workers, os.cpu_count() or 1),
            "oversubscribed": workers > (os.cpu_count() or 1),
            "seconds": seconds,
            "n_jobs": counters.get("report.jobs", 0),
            "cache_hits": counters.get("report.cache_hits", 0),
            "text": text}


def test_bench_report_pipeline(benchmark, report_sink, tmp_path):
    serial = _one_run(tmp_path, "serial_cold", 1, tmp_path / "cache_serial")
    parallel = _one_run(tmp_path, "parallel_cold", PARALLEL_WORKERS,
                        tmp_path / "cache_parallel")

    # The timed leg: the warm rerun over the parallel run's cache.
    warm = benchmark.pedantic(
        _one_run, args=(tmp_path, "warm", PARALLEL_WORKERS,
                        tmp_path / "cache_parallel"),
        rounds=1, iterations=1)

    # Determinism contract: all three modes render the same bytes.
    assert parallel["text"] == serial["text"]
    assert warm["text"] == serial["text"]
    assert warm["cache_hits"] >= 1

    warm_speedup = serial["seconds"] / max(warm["seconds"], 1e-9)
    parallel_speedup = serial["seconds"] / max(parallel["seconds"], 1e-9)
    record = {
        "n_cycles": N_CYCLES,
        "mutations": MUTATIONS,
        "cpu_count": os.cpu_count(),
        "runs": [{k: v for k, v in run.items() if k != "text"}
                 for run in (serial, parallel, warm)],
        "parallel_speedup_vs_serial": round(parallel_speedup, 3),
        "warm_speedup_vs_serial_cold": round(warm_speedup, 3),
    }
    write_bench("report_pipeline", record)
    report_sink("report_pipeline", json.dumps(record, indent=2))

    assert warm_speedup >= 10.0
    # The parallel gate needs real cores; smaller boxes only record it.
    if (os.cpu_count() or 1) >= 4:
        assert parallel_speedup >= 3.0
