"""Table I: latency, area and critical path of the radix-16 multiplier.

Regenerates the paper's Table I rows (critical-path segments, latency in
ps and FO4, area in um^2 and K NAND2) from STA and area accounting on
the structural netlist.  The benchmark times the full analysis flow.
"""

from repro.eval.experiments import PAPER
from repro.eval.orchestrator import run_experiment


def test_bench_table1(benchmark, report_sink):
    result = benchmark.pedantic(run_experiment, args=("table1",),
                                rounds=1, iterations=1)
    report_sink("table1_radix16", result.render())

    paper = PAPER["table1"]
    # Shape assertions: within a 0.5x..1.5x band of every paper figure,
    # and the tree shallower than radix-4's (checked in bench_table2).
    assert 0.5 * paper["latency_ps"] <= result.latency_ps \
        <= 1.5 * paper["latency_ps"]
    assert 0.5 * paper["area_um2"] <= result.area_um2 \
        <= 1.5 * paper["area_um2"]
    assert result.segments_ps["precomp"] > 0
    assert result.segments_ps["tree"] > result.segments_ps["ppgen"]
