"""Fig. 3: the speculative combined normalization/rounding datapath.

Sweeps random and boundary products through the dual-CPA scheme and
validates against exact injection rounding, with special attention to
the renormalization window where low-path rounding overflows.
"""

from repro.eval.orchestrator import run_experiment


def test_bench_fig3(benchmark, report_sink):
    result = benchmark.pedantic(
        run_experiment, args=("fig3",), kwargs={"samples": 5000},
        rounds=1, iterations=1)
    report_sink("fig3_normround", result.render())
    rows = dict(result.rows)
    assert rows["mismatches vs exact rounding"] == 0
    assert rows["cases checked"] >= 5000
    assert rows["high path (P1) selected"] > 0
    assert rows["low path (P0 << 1) selected"] > 0
    assert rows["renormalized by rounding overflow"] >= 1
