"""Fig. 1: structure of the partial product generation.

Inventory check: 17 rows, minimally redundant digits, the three odd
multiple CPAs, the one-hot selection muxes and the negation XOR row.
The benchmark times building + analyzing the PPGEN-bearing netlist.
"""

from repro.eval.orchestrator import run_experiment


def test_bench_fig1(benchmark, report_sink):
    result = benchmark.pedantic(run_experiment, args=("fig1",),
                                rounds=1, iterations=1)
    report_sink("fig1_ppgen", result.render())
    rows = dict(result.rows)
    assert rows["partial products (rows)"] == 17
    assert rows["precomp gates"] > 0
    assert rows["ppgen mux cells (AO22)"] >= 17 * 60  # ~4 per bit, 68 bits
    assert rows["ppgen negation XORs"] >= 1000
