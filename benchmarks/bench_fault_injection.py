"""Verification-strength benchmark: mutation coverage of the co-sim.

Injects functional faults (cell rekinds, non-commutative pin swaps)
into the radix-16 multiplier and the multi-format unit and measures how
often the repository's co-simulation batteries detect them.  Survivors
are dominated by *equivalent mutants*: an OR in a one-hot select tree
is equivalent to XOR, and a prefix adder's ``g | (p & x)`` node is
XOR-equivalent because ``g`` and ``p`` are mutually exclusive.

Both campaigns now run through the orchestrator, which shards the
mutation budget into deterministically seeded chunks (see
:func:`repro.eval.fault_injection.chunk_plan`) so the serial and
parallel runs produce identical coverage figures.

``test_bench_fault_sim_race`` additionally races the two campaign
engines head to head — full clone-and-resimulate vs the differential
cone engine — asserts their :class:`CoverageResult` values are
bit-identical, and emits ``BENCH_fault_sim.json`` (``repro.bench/1``
envelope) at the repository root with the per-mutation speedup, mean
fan-out cone size and early-exit rate.
"""

import os
import time

from _bench_io import write_bench

from repro import obs
from repro.eval.fault_injection import (
    campaign_battery,
    chunk_plan,
    clear_campaign_cache,
    experiment_fault_coverage,
    mutation_coverage,
    propose_mutation,
)
from repro.eval.experiments import cached_module
from repro.eval.orchestrator import run_experiment
from repro.hdl.cell import cell_num_inputs
from repro.hdl.sim.differential import DifferentialEngine

#: Mutations for the head-to-head race — the full path re-simulates the
#: whole radix-16 datapath per mutation, so this is the slow side.
N_RACE = int(os.environ.get("REPRO_FAULT_BENCH_MUTATIONS", "20"))

#: Wide-battery superword (ISSUE 9): the whole campaign battery packs
#: into one W x 64-pattern golden word instead of 64-pattern chunks.
BATTERY_PATTERNS = int(os.environ.get("REPRO_FAULT_BENCH_BATTERY", "256"))

#: Gate: chunked campaigns must share golden runs — at least this many
#: fewer golden kernel invocations than chunks.
MIN_INVOCATION_REDUCTION = float(
    os.environ.get("REPRO_FAULT_BENCH_MIN_REDUCTION", "3.0"))


def test_bench_mutation_coverage_multiplier(benchmark, report_sink):
    result = benchmark.pedantic(
        run_experiment, args=("fault_r16",),
        kwargs={"n_mutations": 60, "seed": 7},
        rounds=1, iterations=1)
    report_sink("fault_injection_r16", result.render())
    assert result.attempted == 60
    assert result.coverage >= 0.8


def test_bench_mutation_coverage_mf_unit(benchmark, report_sink):
    result = benchmark.pedantic(
        run_experiment, args=("fault_mf",),
        kwargs={"n_mutations": 40, "seed": 8},
        rounds=1, iterations=1)
    report_sink("fault_injection_mf", result.render())
    assert result.attempted == 40
    assert result.coverage >= 0.6   # mode-gated logic needs specific data


def test_bench_fault_sim_race(report_sink):
    """Full vs differential on the radix-16 campaign: identical results,
    measured per-mutation speedup recorded in BENCH_fault_sim.json."""
    module = cached_module("r16")
    battery = campaign_battery("r16", module)
    seed = 7

    t0 = time.perf_counter()
    full = mutation_coverage(module, n_mutations=N_RACE, seed=seed,
                             mode="full", battery=battery)
    full_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    diff = mutation_coverage(module, n_mutations=N_RACE, seed=seed,
                             mode="differential", battery=battery)
    diff_s = time.perf_counter() - t0

    assert (full.attempted, full.detected) == (diff.attempted,
                                               diff.detected)
    assert [(s.gate_index, s.description) for s in full.survivors] \
        == [(s.gate_index, s.description) for s in diff.survivors]

    # Isolate the steady-state per-mutation cost: golden simulation and
    # fan-out precomputation are per-campaign, paid once.
    engine = DifferentialEngine(module, battery.stimulus,
                                battery.n_patterns,
                                battery.observation(module))
    import random as _random
    rng = _random.Random(seed)
    arities = [cell_num_inputs(g.kind) for g in module.gates]
    proposals = [propose_mutation(module, rng, arities)
                 for __ in range(N_RACE)]
    t0 = time.perf_counter()
    verdicts = [engine.run_mutant(idx, mutant)
                for idx, mutant, __ in proposals]
    mutants_s = time.perf_counter() - t0

    per_mutation_speedup = (full_s / N_RACE) / (mutants_s / N_RACE)

    # Wide-battery superword campaign with shared golden state: the
    # whole battery (BATTERY_PATTERNS cases) runs as ONE golden kernel
    # invocation, reused by every chunk of the campaign.  The
    # ``fault.golden_runs`` counter proves the reduction the gate
    # demands; the full-mode race proves the verdicts are unchanged.
    clear_campaign_cache()
    reg = obs.registry()
    golden_before = reg.counter_value("fault.golden_runs") or 0
    wide = experiment_fault_coverage(
        "r16", n_mutations=40, seed=seed,
        battery_patterns=BATTERY_PATTERNS)
    golden_runs = (reg.counter_value("fault.golden_runs") or 0) \
        - golden_before
    chunks = len(chunk_plan(40, seed, None))
    invocation_reduction = chunks / golden_runs if golden_runs \
        else float("inf")
    wide_full = experiment_fault_coverage(
        "r16", n_mutations=8, seed=seed, mode="full",
        battery_patterns=BATTERY_PATTERNS)
    wide_diff = experiment_fault_coverage(
        "r16", n_mutations=8, seed=seed,
        battery_patterns=BATTERY_PATTERNS)
    assert (wide_full.attempted, wide_full.detected) \
        == (wide_diff.attempted, wide_diff.detected), \
        "wide-battery differential diverged from full re-simulation"

    report = {
        "design": "r16",
        "mutations": N_RACE,
        "gates": len(module.gates),
        "full_s": round(full_s, 3),
        "differential_s": round(diff_s, 3),
        "differential_mutants_s": round(mutants_s, 3),
        "campaign_speedup": round(full_s / diff_s, 2),
        "per_mutation_speedup": round(per_mutation_speedup, 2),
        "mean_cone_size": round(sum(v.cone_size for v in verdicts)
                                / len(verdicts), 1),
        "mean_gates_evaluated": round(
            sum(v.gates_evaluated for v in verdicts) / len(verdicts), 1),
        "early_exit_rate": round(sum(1 for v in verdicts if v.early_exit)
                                 / len(verdicts), 3),
        "detected": diff.detected,
        "battery_patterns": BATTERY_PATTERNS,
        "campaign_chunks": chunks,
        "golden_runs": golden_runs,
        "kernel_invocation_reduction": round(invocation_reduction, 2),
        "wide_coverage": round(wide.coverage, 3),
        "cpu_count": os.cpu_count(),
    }
    write_bench("fault_sim", report, seed=seed)
    report_sink("fault_sim_race",
                "\n".join(f"{k:>24}: {v}" for k, v in report.items()))
    assert per_mutation_speedup >= 5.0
    assert invocation_reduction >= MIN_INVOCATION_REDUCTION, (
        f"golden-run sharing: {golden_runs} golden kernel invocations "
        f"for {chunks} chunks ({invocation_reduction:.1f}x < "
        f"{MIN_INVOCATION_REDUCTION}x gate)")
