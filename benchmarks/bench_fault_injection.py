"""Verification-strength benchmark: mutation coverage of the co-sim.

Injects functional faults (cell rekinds, non-commutative pin swaps)
into the radix-16 multiplier and the multi-format unit and measures how
often the repository's co-simulation batteries detect them.  Survivors
are dominated by *equivalent mutants*: an OR in a one-hot select tree
is equivalent to XOR, and a prefix adder's ``g | (p & x)`` node is
XOR-equivalent because ``g`` and ``p`` are mutually exclusive.

Both campaigns now run through the orchestrator, which shards the
mutation budget into deterministically seeded chunks (see
:func:`repro.eval.fault_injection.chunk_plan`) so the serial and
parallel runs produce identical coverage figures.
"""

from repro.eval.orchestrator import run_experiment


def test_bench_mutation_coverage_multiplier(benchmark, report_sink):
    result = benchmark.pedantic(
        run_experiment, args=("fault_r16",),
        kwargs={"n_mutations": 60, "seed": 7},
        rounds=1, iterations=1)
    report_sink("fault_injection_r16", result.render())
    assert result.attempted == 60
    assert result.coverage >= 0.8


def test_bench_mutation_coverage_mf_unit(benchmark, report_sink):
    result = benchmark.pedantic(
        run_experiment, args=("fault_mf",),
        kwargs={"n_mutations": 40, "seed": 8},
        rounds=1, iterations=1)
    report_sink("fault_injection_mf", result.render())
    assert result.attempted == 40
    assert result.coverage >= 0.6   # mode-gated logic needs specific data
