"""Verification-strength benchmark: mutation coverage of the co-sim.

Injects functional faults (cell rekinds, non-commutative pin swaps)
into the radix-16 multiplier and the multi-format unit and measures how
often the repository's co-simulation batteries detect them.  Survivors
are dominated by *equivalent mutants*: an OR in a one-hot select tree
is equivalent to XOR, and a prefix adder's ``g | (p & x)`` node is
XOR-equivalent because ``g`` and ``p`` are mutually exclusive.
"""

import random

from repro.bits.ieee754 import BINARY32, BINARY64
from repro.core.formats import MFFormat, OperandBundle
from repro.eval.experiments import cached_module
from repro.eval.fault_injection import (
    mf_unit_checker,
    multiplier_checker,
    mutation_coverage,
)


def _mf_operations(rng, n=12):
    ops = []
    for i in range(n):
        pick = i % 3
        if pick == 0:
            ops.append((OperandBundle.int64(rng.getrandbits(64),
                                            rng.getrandbits(64)),
                        MFFormat.INT64))
        elif pick == 1:
            ops.append((OperandBundle.fp64(
                BINARY64.pack(0, rng.randint(1, 2046), rng.getrandbits(52)),
                BINARY64.pack(0, rng.randint(1, 2046),
                              rng.getrandbits(52))), MFFormat.FP64))
        else:
            ops.append((OperandBundle.fp32_pair(
                *[BINARY32.pack(0, rng.randint(1, 254),
                                rng.getrandbits(23)) for __ in range(4)]),
                MFFormat.FP32X2))
    return ops


def test_bench_mutation_coverage_multiplier(benchmark, report_sink):
    rng = random.Random(1)
    cases = [(rng.getrandbits(64), rng.getrandbits(64)) for __ in range(16)]
    module = cached_module("r16")

    def campaign():
        return mutation_coverage(module, multiplier_checker(cases),
                                 n_mutations=60, seed=7)

    result = benchmark.pedantic(campaign, rounds=1, iterations=1)
    report_sink("fault_injection_r16", result.render())
    assert result.coverage >= 0.8


def test_bench_mutation_coverage_mf_unit(benchmark, report_sink):
    rng = random.Random(2)
    ops = _mf_operations(rng)
    module = cached_module("mf")

    def campaign():
        return mutation_coverage(module, mf_unit_checker(ops),
                                 n_mutations=40, seed=8)

    result = benchmark.pedantic(campaign, rounds=1, iterations=1)
    report_sink("fault_injection_mf", result.render())
    assert result.coverage >= 0.6   # mode-gated logic needs specific data
