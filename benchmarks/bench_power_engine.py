"""Glitch-replay engine: before/after milliseconds per cycle transition.

"Before" is the seed implementation kept verbatim in
``repro.hdl.power.monte_carlo._event_toggles_legacy``: a fresh heapq
event simulator per call, full per-cycle stimulus dicts, per-gate
``cell_eval`` dispatch.  "After" is the shipping path of
``estimate_power``: a shared simulator, delta stimulus straight from the
levelized pattern words, and the compiled C event kernel when a system
compiler is present (pure-Python time wheel otherwise).

Emits ``BENCH_power_engine.json`` (repro.bench/1 envelope) at the
repository root with the per-design numbers; the equivalence of per-net
toggle counts between the two paths is asserted in the same breath.
"""

import os
import time

from _bench_io import write_bench
from repro.eval.experiments import cached_module
from repro.eval.workloads import WorkloadGenerator
from repro.hdl.library import default_library
from repro.hdl.power.monte_carlo import (
    _event_toggles,
    _event_toggles_legacy,
    shared_event_simulator,
)
from repro.hdl.sim.levelized import LevelizedSimulator

#: Cycles for the engine comparison — small, because the *before* path
#: is the slow one being measured.
N_CYCLES = int(os.environ.get("REPRO_ENGINE_BENCH_CYCLES", "8"))

DESIGNS = ("r16", "r16_pipe", "mf")

SEED = 2017


def _stimulus(which, gen, n_cycles):
    if which == "mf":
        return gen.mf_stimulus("fp64", n_cycles)
    return gen.multiplier_stimulus(n_cycles)


def test_bench_power_engine(report_sink):
    lib = default_library()
    transitions = N_CYCLES - 1
    results = {}
    kernel = "python"
    for which in DESIGNS:
        module = cached_module(which)
        gen = WorkloadGenerator(SEED)
        stim = _stimulus(which, gen, N_CYCLES)
        run = LevelizedSimulator(module).run(stim, N_CYCLES)

        t0 = time.perf_counter()
        before_totals = _event_toggles_legacy(module, lib, run, stim,
                                              N_CYCLES)
        before_s = time.perf_counter() - t0

        # Warm the shared simulator (construction is amortized across
        # estimate_power calls; the seed rebuilt everything per call).
        esim = shared_event_simulator(module, lib)
        kernel = esim.kernel
        t0 = time.perf_counter()
        after_totals, stats = _event_toggles(module, lib, run, N_CYCLES)
        after_s = time.perf_counter() - t0

        assert after_totals == before_totals, f"{which}: toggles diverged"
        results[which] = {
            "before_ms_per_transition": before_s * 1000 / transitions,
            "after_ms_per_transition": after_s * 1000 / transitions,
            "speedup": before_s / after_s if after_s else float("inf"),
            "events_processed": stats["events_processed"],
        }

    payload = {
        "n_cycles": N_CYCLES,
        "transitions": transitions,
        "kernel": kernel,
        "designs": results,
    }
    write_bench("power_engine", payload, seed=SEED)

    lines = [f"glitch replay engine, {transitions} transitions "
             f"(kernel: {kernel})"]
    for which, r in results.items():
        lines.append(
            f"{which:<10} before {r['before_ms_per_transition']:7.1f} ms/tr"
            f"   after {r['after_ms_per_transition']:6.1f} ms/tr"
            f"   speedup {r['speedup']:5.1f}x")
    report_sink("power_engine", "\n".join(lines))

    # The headline acceptance: with the compiled kernel the radix-16
    # glitch replay is at least 5x faster per transition.
    if kernel == "c":
        assert results["r16"]["speedup"] >= 5.0
