"""Ablation studies: the design choices the paper argues for, swept.

* radix 4 / 8 / 16 — the Sec. II-A trade-off, including the radix-8
  point the paper declined to build;
* final CPA style — ripple / Brent-Kung / Kogge-Stone / carry-select;
* pipeline register placement — the Sec. III-D discussion;
* reduction tree style — Dadda 3:2 vs 4:2-compressor-first.

Every design point is functionally verified before being measured.
"""

from repro.eval.orchestrator import run_experiment


def test_bench_ablation_radix(benchmark, report_sink):
    result = benchmark.pedantic(run_experiment, args=("sweep_radix",),
                                rounds=1, iterations=1)
    report_sink("ablation_radix", result.render())
    by_label = {p.label: p for p in result.points}
    # The paper's reading: radix-8 needs the pre-computation like
    # radix-16 but keeps a taller, slower tree — dominated.
    assert by_label["radix-4"].latency_ps < by_label["radix-16"].latency_ps
    assert by_label["radix-8"].latency_ps > 0.95 * by_label[
        "radix-16"].latency_ps


def test_bench_ablation_cpa(benchmark, report_sink):
    result = benchmark.pedantic(run_experiment, args=("sweep_cpa",),
                                rounds=1, iterations=1)
    report_sink("ablation_cpa", result.render())
    by_label = {p.label: p for p in result.points}
    assert by_label["cpa=kogge_stone"].latency_ps \
        < by_label["cpa=ripple"].latency_ps
    assert by_label["cpa=brent_kung"].gates \
        < by_label["cpa=kogge_stone"].gates


def test_bench_ablation_pipeline_cut(benchmark, report_sink):
    result = benchmark.pedantic(
        run_experiment, args=("sweep_pipeline_cut",), rounds=1, iterations=1)
    report_sink("ablation_pipeline_cut", result.render())
    by_label = {p.label: p for p in result.points}
    comb = by_label["cut=None"]
    for cut in ("cut=after_precomp", "cut=after_ppgen"):
        assert by_label[cut].clock_ps < comb.clock_ps
        assert by_label[cut].registers > 0
    # Fewest flip-flops after the pre-computation (the paper's criterion
    # for the placement it settled on).
    assert by_label["cut=after_precomp"].registers \
        < by_label["cut=after_ppgen"].registers


def test_bench_ablation_tree(benchmark, report_sink):
    result = benchmark.pedantic(run_experiment, args=("sweep_tree",),
                                rounds=1, iterations=1)
    report_sink("ablation_tree", result.render())
    assert len(result.points) == 4


def test_bench_ablation_specialization(benchmark, report_sink):
    result = benchmark.pedantic(
        run_experiment, args=("sweep_specialization",), rounds=1,
        iterations=1)
    report_sink("ablation_specialization", result.render())
    by_label = {p.label: p for p in result.points}
    full = by_label["multi-format"]
    # Every single-format specialization is smaller than the full unit;
    # the fp64-only one should shed at least the dual-lane gating.
    for label in ("int64-only", "fp64-only", "fp32x2-only"):
        assert by_label[label].gates < full.gates
    assert by_label["fp32x2-only"].gates < 0.98 * full.gates
