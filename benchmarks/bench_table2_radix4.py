"""Table II: latency, area and critical path of the radix-4 baseline.

Also checks the paper's comparative claims against Table I: the radix-4
unit is faster (paper: ~20%) with a substantially larger reduction tree.
"""

from repro.eval.experiments import PAPER
from repro.eval.orchestrator import run_experiment


def test_bench_table2(benchmark, report_sink):
    result = benchmark.pedantic(run_experiment, args=("table2",),
                                rounds=1, iterations=1)
    report_sink("table2_radix4", result.render())

    r16 = run_experiment("table1")
    # Comparative claims of Sec. II-A.
    assert result.latency_ps < r16.latency_ps
    assert 0.70 < result.latency_ps / r16.latency_ps < 0.98
    assert result.segments_ps["tree"] > r16.segments_ps["tree"]
    paper = PAPER["table2"]
    assert 0.5 * paper["latency_ps"] <= result.latency_ps \
        <= 1.5 * paper["latency_ps"]
