"""Fig. 5: the 3-stage pipelined multi-format unit.

Per-stage STA, register placement, achievable clock — compared with the
paper's 1120 ps / 17.5 FO4 / 880 MHz figures — plus a mixed-format
functional batch through the actual pipeline.
"""

import random

from repro.bits.ieee754 import BINARY32, BINARY64
from repro.core.formats import MFFormat, OperandBundle
from repro.core.mfmult import MFMult
from repro.core.pipeline_unit import MFMultUnit
from repro.eval.experiments import cached_module
from repro.eval.orchestrator import run_experiment


def _mixed_batch(n=30):
    unit = MFMultUnit(module=cached_module("mf"))
    mf = MFMult(fidelity="fast")
    rng = random.Random(55)
    ops = []
    for i in range(n):
        pick = i % 3
        if pick == 0:
            ops.append((OperandBundle.int64(rng.getrandbits(64),
                                            rng.getrandbits(64)),
                        MFFormat.INT64))
        elif pick == 1:
            ops.append((OperandBundle.fp64(
                BINARY64.pack(rng.getrandbits(1), rng.randint(1, 2046),
                              rng.getrandbits(52)),
                BINARY64.pack(rng.getrandbits(1), rng.randint(1, 2046),
                              rng.getrandbits(52))), MFFormat.FP64))
        else:
            enc = [BINARY32.pack(rng.getrandbits(1), rng.randint(1, 254),
                                 rng.getrandbits(23)) for __ in range(4)]
            ops.append((OperandBundle.fp32_pair(*enc), MFFormat.FP32X2))
    results = unit.run_batch(ops)
    for (bundle, fmt), res in zip(ops, results):
        expect = mf.multiply(bundle, fmt)
        assert (res.ph, res.pl) == (expect.ph, expect.pl)
    return n


def test_bench_fig5(benchmark, report_sink):
    result = run_experiment("fig5")
    checked = benchmark.pedantic(_mixed_batch, rounds=1, iterations=1)
    report_sink("fig5_pipeline",
                result.render()
                + f"\nmixed-format co-simulated operations: {checked}")
    assert len(result.stage_delays_ps) == 3
    assert 400 <= result.max_freq_mhz <= 1100     # paper: 880 MHz
    # Both register cuts exist with stage-2's S/C bank the smaller one
    # (the paper chose the placement with the fewest registers).
    assert set(result.registers) == {1, 2}
