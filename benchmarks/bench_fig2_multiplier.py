"""Fig. 2: the assembled radix-16 multiplier.

Block inventory plus a functional spot-run: the benchmark times a
64-pattern exhaustive-corner simulation of the full netlist.
"""

import random

from repro.eval.experiments import cached_module
from repro.eval.orchestrator import run_experiment
from repro.hdl.sim.levelized import LevelizedSimulator


def _simulate_corners():
    module = cached_module("r16")
    rng = random.Random(2017)
    ones = (1 << 64) - 1
    cases = [(0, 0), (ones, ones), (1, ones), (ones, 1),
             (1 << 63, 1 << 63)]
    cases += [(rng.getrandbits(64), rng.getrandbits(64)) for __ in range(59)]
    stim = {"x": [c[0] for c in cases], "y": [c[1] for c in cases]}
    run = LevelizedSimulator(module).run(stim, len(cases))
    for t, (x, y) in enumerate(cases):
        assert run.bus_word(module.outputs["p"], t) == x * y
    return len(cases)


def test_bench_fig2(benchmark, report_sink):
    result = run_experiment("fig2")
    checked = benchmark.pedantic(_simulate_corners, rounds=1, iterations=1)
    report_sink("fig2_multiplier",
                result.render() + f"\nfunctional corner patterns: {checked}")
    rows = dict(result.rows)
    assert "precomp" in rows["blocks"]
    assert "tree" in rows["blocks"]
