"""Table V: power and power efficiency of the multi-format unit.

The headline result: per-format power ordering int64 > binary64 > dual
binary32 > single binary32, and efficiency (GFLOPS/W) dominated by the
dual binary32 mode at roughly 2.8x the binary64 figure.
"""

import os

from repro.eval.orchestrator import run_experiment

N_CYCLES = int(os.environ.get("REPRO_POWER_CYCLES", "64"))


def test_bench_table5(benchmark, report_sink):
    result = benchmark.pedantic(
        run_experiment, args=("table5",), kwargs={"n_cycles": N_CYCLES},
        rounds=1, iterations=1)
    text = result.render() + (
        f"\nmeasured max clock: {result.max_freq_mhz:.0f} MHz "
        f"(paper: 880 MHz)")
    report_sink("table5_multiformat", text)

    mw = {k: v[0] for k, v in result.measured.items()}
    eff = {k: v[2] for k, v in result.measured.items()}
    # Power ordering (paper: 8.90 > 7.20 > 5.17 > 3.77).
    assert mw["int64"] > mw["fp64"] > mw["fp32_dual"] > mw["fp32_single"]
    # Efficiency ordering (paper: 38.68 > 26.53 > 13.89 > 11.24).
    assert eff["fp32_dual"] > eff["fp32_single"] > eff["fp64"] > eff["int64"]
    # Dual binary32 roughly doubles-to-triples binary64's efficiency
    # (paper: 2.8x).
    assert 1.8 <= eff["fp32_dual"] / eff["fp64"] <= 3.8
    # fp64 consumes roughly 80% of int64 (paper: 0.81).
    assert 0.70 <= mw["fp64"] / mw["int64"] <= 0.95
