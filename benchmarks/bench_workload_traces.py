"""Sec. IV on named workload families.

Extends the abstract reducible-fraction sweep with synthetic traces of
recognizable applications (DSP filtering, graphics transforms,
quantized ML inference, scientific computing, finance), measuring each
family's Algorithm-1 reducibility and the resulting energy savings on
the demoting machine.
"""

from repro.core.vector_unit import FormatPowerTable, VectorMultiplier
from repro.eval.tables import render_table
from repro.eval.traces import TRACES, generate_trace, reducibility


def run_trace_study(n_ops=300):
    table = FormatPowerTable()
    rows = []
    for name in sorted(TRACES):
        pairs = generate_trace(name, n_ops)
        red = reducibility(pairs)
        stats = VectorMultiplier().run(pairs).stats
        rows.append((name, TRACES[name].description,
                     f"{red:.1%}",
                     f"{stats.demoted_operations}/{n_ops}",
                     f"{stats.savings_fraction(table):.1%}"))
    return rows


def test_bench_workload_traces(benchmark, report_sink):
    rows = benchmark.pedantic(run_trace_study, rounds=1, iterations=1)
    text = render_table(
        ("workload", "operands", "reducible", "demoted", "energy saved"),
        rows, title="Sec. IV across workload families (paper Table V "
                    "prices)")
    report_sink("workload_traces", text)

    by_name = {r[0]: r for r in rows}
    # Savings track reducibility: the quantized families save real
    # energy, the full-precision one saves none.
    assert by_name["scientific"][4] == "0.0%"
    assert float(by_name["dsp_fir"][4].rstrip("%")) > 40
    assert float(by_name["ml_inference"][4].rstrip("%")) > 30
    assert float(by_name["graphics"][4].rstrip("%")) > 20
