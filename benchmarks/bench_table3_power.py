"""Table III: power at 100 MHz, combinational vs two-stage pipelined.

The paper's claim: radix-16 beats radix-4 and the advantage *grows* with
pipelining because the shallower stages glitch less.  Both multipliers
run the same Monte Carlo pattern stream through the glitch-aware
event-driven simulation.
"""

import os

from repro.eval.experiments import PAPER
from repro.eval.orchestrator import run_experiment

N_CYCLES = int(os.environ.get("REPRO_POWER_CYCLES", "64"))


def test_bench_table3(benchmark, report_sink):
    result = benchmark.pedantic(
        run_experiment, args=("table3",), kwargs={"n_cycles": N_CYCLES},
        rounds=1, iterations=1)
    report_sink("table3_power", result.render())

    paper = PAPER["table3"]
    # Pipelined: radix-16 must win, near the paper's ratio.
    assert result.pipe_ratio < 1.0
    assert abs(result.pipe_ratio - paper["pipe_ratio"]) < 0.08
    # The paper's trend: pipelining improves radix-16's relative power.
    assert result.pipe_ratio < result.comb_ratio
    # Absolute pipelined figures land near the paper's (the energy scale
    # was calibrated once on the radix-16 entry; radix-4 follows freely).
    assert abs(result.power_mw["pipe_r16"] - paper["pipe_r16"]) < 1.0
    assert abs(result.power_mw["pipe_r4"] - paper["pipe_r4"]) < 1.5
