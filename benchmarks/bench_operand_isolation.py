"""Operand-isolation ablation (the paper's S&EH overhead, Sec. III-E).

The paper observes ~10% int64 power overhead from sign & exponent
handling "that is inactive for int64 operations".  Gating the S&EH
operand bits with the FP-mode signal silences that logic; this
benchmark measures what it recovers on our unit (whose S&EH is leaner
than the paper's to begin with) and confirms FP results are unaffected.
"""

import os
import random

from repro.bits.ieee754 import BINARY64
from repro.core.formats import MFFormat, OperandBundle
from repro.core.mfmult import MFMult
from repro.core.pipeline_unit import MFMultUnit, build_mf_multiplier
from repro.eval.tables import render_table
from repro.eval.workloads import WorkloadGenerator
from repro.hdl.library import default_library
from repro.hdl.power.monte_carlo import estimate_power

N_CYCLES = int(os.environ.get("REPRO_POWER_CYCLES", "16"))


def run_isolation_study(n_cycles=N_CYCLES):
    lib = default_library()
    rows = []
    reports = {}
    for iso in (False, True):
        module = build_mf_multiplier(operand_isolation=iso)
        for fmt in ("int64", "fp64"):
            gen = WorkloadGenerator(2017)
            stim = gen.mf_stimulus(fmt, n_cycles)
            report = estimate_power(module, lib, stim, n_cycles)
            reports[(iso, fmt)] = report
            seh = (report.by_block_mw.get("seh", 0.0)
                   + report.by_block_mw.get("exp3", 0.0))
            rows.append((f"isolation={iso}", fmt,
                         round(report.total_mw, 3), round(seh, 3)))
    return rows, reports


def test_bench_operand_isolation(benchmark, report_sink):
    rows, reports = benchmark.pedantic(run_isolation_study, rounds=1,
                                       iterations=1)
    saved = (reports[(False, "int64")].total_mw
             - reports[(True, "int64")].total_mw)
    text = render_table(
        ("config", "format", "total mW", "S&EH mW"), rows,
        title="Ablation: S&EH operand isolation")
    text += (f"\nint64 power recovered by isolation: {saved:.3f} mW "
             f"({saved / reports[(False, 'int64')].total_mw:.1%})")
    report_sink("operand_isolation", text)

    # Isolation must reduce int64 power and zero the S&EH activity.
    assert reports[(True, "int64")].total_mw \
        < reports[(False, "int64")].total_mw
    assert reports[(True, "int64")].by_block_mw.get("seh", 0.0) < 0.01
    # And it must not penalize fp64 meaningfully (one AND per bit).
    assert reports[(True, "fp64")].total_mw \
        < reports[(False, "fp64")].total_mw * 1.05

    # Functional spot-check through the isolated unit.
    unit = MFMultUnit(operand_isolation=True)
    mf = MFMult(fidelity="fast")
    rng = random.Random(40)
    ops = [(OperandBundle.fp64(
        BINARY64.pack(0, rng.randint(1, 2046), rng.getrandbits(52)),
        BINARY64.pack(0, rng.randint(1, 2046), rng.getrandbits(52))),
        MFFormat.FP64) for __ in range(6)]
    for (bundle, fmt), res in zip(ops, unit.run_batch(ops)):
        assert res.ph == mf.multiply(bundle, fmt).ph
